#include "src/kv/bucket_table.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "src/check/checker.h"
#include "src/explore/history.h"
#include "src/kv/common.h"
#include "src/rdma/fabric.h"

namespace kv {

namespace {

std::string_view KeyView(std::span<const std::byte> key) {
  return std::string_view(reinterpret_cast<const char*>(key.data()), key.size());
}

}  // namespace

BucketTable::BucketTable(size_t num_buckets) {
  if (num_buckets == 0) {
    throw std::invalid_argument("bucket table: need at least one bucket");
  }
  buckets_.resize(std::bit_ceil(num_buckets));
}

BucketTable::BucketTable(size_t num_buckets, rdma::Node& node) : BucketTable(num_buckets) {
  pool_ = mem::Pool::Shared(node);
  node_ = &node;
}

void BucketTable::NoteCpuStore(const ValueCell& cell) {
  if (cell.len == 0 || node_ == nullptr) {
    return;
  }
  if (check::FabricChecker* checker = node_->fabric()->checker()) {
    checker->OnCpuStore(cell.span.rkey(), cell.span.offset, cell.len);
  }
}

std::shared_ptr<BucketTable::ValueCell> BucketTable::MakeCell(std::span<const std::byte> value,
                                                              uint32_t epoch) {
  auto cell = std::make_shared<ValueCell>();
  cell->pool = pool_;
  cell->span = pool_->Alloc(value.size());
  cell->len = static_cast<uint32_t>(value.size());
  cell->epoch = epoch;
  rdma::CopyBytes(cell->bytes(), value);
  NoteCpuStore(*cell);
  return cell;
}

void BucketTable::Touch(Bucket& bucket, int idx) {
  const uint8_t old_rank = bucket.slots[static_cast<size_t>(idx)].lru;
  for (Slot& slot : bucket.slots) {
    if (slot.used != 0 && slot.lru < old_rank) {
      ++slot.lru;
    }
  }
  bucket.slots[static_cast<size_t>(idx)].lru = 0;
}

int BucketTable::FindSlot(const Bucket& bucket, uint16_t tag,
                          std::span<const std::byte> key) const {
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    const Slot& slot = bucket.slots[static_cast<size_t>(i)];
    if (slot.used == 0 || slot.tag != tag) {
      continue;
    }
    const Entry& entry = entries_[slot.entry];
    if (entry.key.size() == key.size() &&
        std::equal(entry.key.begin(), entry.key.end(), key.begin())) {
      return i;
    }
  }
  return -1;
}

uint32_t BucketTable::AllocEntry() {
  if (!free_entries_.empty()) {
    const uint32_t idx = free_entries_.back();
    free_entries_.pop_back();
    return idx;
  }
  entries_.emplace_back();
  return static_cast<uint32_t>(entries_.size() - 1);
}

void BucketTable::FreeEntry(uint32_t idx) {
  entries_[idx].key.clear();
  entries_[idx].value.clear();
  // Deferred free: if a zero-copy pin still holds the cell, the span
  // returns to the pool when that pin drops, not here.
  entries_[idx].cell.reset();
  free_entries_.push_back(idx);
}

std::optional<std::span<const std::byte>> BucketTable::Get(std::span<const std::byte> key) {
  if (recorder_ != nullptr) {
    recorder_->OnApply(explore::OpKind::kGet, KeyView(key));
  }
  const uint64_t hash = HashBytes(key);
  Bucket& bucket = buckets_[BucketIndex(hash)];
  const int idx = FindSlot(bucket, Tag(hash), key);
  if (idx < 0) {
    ++stats_.misses;
    return std::nullopt;
  }
  Touch(bucket, idx);
  ++stats_.hits;
  const Entry& entry = entries_[bucket.slots[static_cast<size_t>(idx)].entry];
  if (pool_) {
    return std::span<const std::byte>(entry.cell->bytes().data(), entry.cell->len);
  }
  return std::span<const std::byte>(entry.value);
}

std::optional<BucketTable::PinnedValue> BucketTable::GetPinned(std::span<const std::byte> key) {
  if (!pool_) {
    throw std::logic_error("bucket table: GetPinned requires a pool-backed table");
  }
  if (recorder_ != nullptr) {
    recorder_->OnApply(explore::OpKind::kGet, KeyView(key));
  }
  const uint64_t hash = HashBytes(key);
  Bucket& bucket = buckets_[BucketIndex(hash)];
  const int idx = FindSlot(bucket, Tag(hash), key);
  if (idx < 0) {
    ++stats_.misses;
    return std::nullopt;
  }
  Touch(bucket, idx);
  ++stats_.hits;
  const std::shared_ptr<ValueCell>& cell =
      entries_[bucket.slots[static_cast<size_t>(idx)].entry].cell;
  return PinnedValue{cell->span.rkey(), cell->span.offset, cell->len, cell->epoch,
                     std::shared_ptr<const void>(cell)};
}

void BucketTable::Put(std::span<const std::byte> key, std::span<const std::byte> value) {
  if (recorder_ != nullptr) {
    recorder_->OnApply(explore::OpKind::kPut, KeyView(key));
  }
  const uint64_t hash = HashBytes(key);
  Bucket& bucket = buckets_[BucketIndex(hash)];
  const uint16_t tag = Tag(hash);

  int idx = FindSlot(bucket, tag, key);
  if (idx >= 0) {
    Entry& entry = entries_[bucket.slots[static_cast<size_t>(idx)].entry];
    if (pool_) {
      // Overwrite in place only when no zero-copy pin could still READ the
      // old bytes (and the new value fits the reserved span); otherwise
      // copy-on-write into a fresh cell and let the pin's release free the
      // old span.
      std::shared_ptr<ValueCell>& cell = entry.cell;
      const bool pinned = cell && cell.use_count() > 1;
      if (cell && value.size() <= cell->span.size && (!pinned || unsafe_inplace_put_)) {
        cell->len = static_cast<uint32_t>(value.size());
        rdma::CopyBytes(cell->bytes(), value);
        ++cell->epoch;
        NoteCpuStore(*cell);
      } else {
        if (pinned) {
          ++stats_.cow_puts;
        }
        entry.cell = MakeCell(value, cell ? cell->epoch + 1 : 0);
      }
    } else {
      // Overwrite in place.
      entry.value.assign(value.begin(), value.end());
    }
    Touch(bucket, idx);
    ++stats_.updates;
    return;
  }

  // Free slot, or strict-LRU eviction within the bucket.
  int victim = -1;
  for (int i = 0; i < kSlotsPerBucket; ++i) {
    if (bucket.slots[static_cast<size_t>(i)].used == 0) {
      victim = i;
      break;
    }
  }
  if (victim < 0) {
    uint8_t oldest = 0;
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      if (bucket.slots[static_cast<size_t>(i)].lru >= oldest) {
        oldest = bucket.slots[static_cast<size_t>(i)].lru;
        victim = i;
      }
    }
    FreeEntry(bucket.slots[static_cast<size_t>(victim)].entry);
    --size_;
    ++stats_.evictions;
  }

  Slot& slot = bucket.slots[static_cast<size_t>(victim)];
  const uint32_t entry_idx = AllocEntry();
  entries_[entry_idx].key.assign(key.begin(), key.end());
  if (pool_) {
    entries_[entry_idx].cell = MakeCell(value, 0);
  } else {
    entries_[entry_idx].value.assign(value.begin(), value.end());
  }
  const bool was_used = slot.used != 0;
  slot.tag = tag;
  slot.entry = entry_idx;
  slot.used = 1;
  if (!was_used) {
    // Fresh slot starts as oldest; Touch below promotes it.
    slot.lru = kSlotsPerBucket - 1;
  }
  Touch(bucket, victim);
  ++size_;
  ++stats_.inserts;
}

size_t BucketTable::SnapshotChunk(size_t cursor, size_t max_buckets,
                                  std::vector<SnapshotItem>* out) const {
  const size_t end = std::min(cursor + max_buckets, buckets_.size());
  for (size_t b = cursor; b < end; ++b) {
    for (const Slot& slot : buckets_[b].slots) {
      if (slot.used == 0) {
        continue;
      }
      const Entry& entry = entries_[slot.entry];
      SnapshotItem item;
      item.key = entry.key;
      if (pool_) {
        const std::span<std::byte> bytes = entry.cell->bytes();
        item.value.assign(bytes.begin(), bytes.end());
      } else {
        item.value = entry.value;
      }
      out->push_back(std::move(item));
    }
  }
  return end;
}

void BucketTable::Clear() {
  for (Bucket& bucket : buckets_) {
    bucket = Bucket{};
  }
  entries_.clear();
  free_entries_.clear();
  size_ = 0;
}

bool BucketTable::Erase(std::span<const std::byte> key) {
  if (recorder_ != nullptr) {
    recorder_->OnApply(explore::OpKind::kDelete, KeyView(key));
  }
  const uint64_t hash = HashBytes(key);
  Bucket& bucket = buckets_[BucketIndex(hash)];
  const int idx = FindSlot(bucket, Tag(hash), key);
  if (idx < 0) {
    return false;
  }
  Slot& slot = bucket.slots[static_cast<size_t>(idx)];
  FreeEntry(slot.entry);
  // Keep remaining ranks dense: demote nothing, just age out the hole.
  const uint8_t gone_rank = slot.lru;
  slot = Slot{};
  for (Slot& s : bucket.slots) {
    if (s.used != 0 && s.lru > gone_rank) {
      --s.lru;
    }
  }
  --size_;
  ++stats_.erases;
  return true;
}

}  // namespace kv
