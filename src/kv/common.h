// Shared vocabulary of the key-value systems: RPC ids, request/response
// encodings, and byte hashing.
//
// GET request payload:    [u16 key_size][key]
// PUT request payload:    [u16 key_size][u32 value_size][key][value]
// DELETE request payload: [u16 key_size][key]
// GET response:           [u8 status][value]
// PUT/DELETE response:    [u8 status]

#ifndef SRC_KV_COMMON_H_
#define SRC_KV_COMMON_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

namespace kv {

constexpr uint16_t kRpcGet = 1;
constexpr uint16_t kRpcPut = 2;
constexpr uint16_t kRpcDelete = 3;
// MULTIGET request:  [u16 count][(u16 key_size, key bytes) x count]
// MULTIGET response: [u8 status][u16 count][(u32 size_or_miss, value) x count]
// where size_or_miss == kMultiGetMiss marks an absent key.
constexpr uint16_t kRpcMultiGet = 4;
constexpr uint32_t kMultiGetMiss = 0xffffffffu;

enum class Status : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kError = 2,
};

// FNV-1a over bytes; stable across platforms, used for partitioning,
// bucket choice, and Pilaf slot tags.
inline uint64_t HashBytes(std::span<const std::byte> bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    h ^= static_cast<uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- Request encoding -------------------------------------------------------

inline size_t EncodeGet(std::span<std::byte> out, std::span<const std::byte> key) {
  const uint16_t ks = static_cast<uint16_t>(key.size());
  std::memcpy(out.data(), &ks, sizeof(ks));
  std::memcpy(out.data() + sizeof(ks), key.data(), key.size());
  return sizeof(ks) + key.size();
}

inline size_t EncodeDelete(std::span<std::byte> out, std::span<const std::byte> key) {
  return EncodeGet(out, key);
}

inline size_t EncodePut(std::span<std::byte> out, std::span<const std::byte> key,
                        std::span<const std::byte> value) {
  const uint16_t ks = static_cast<uint16_t>(key.size());
  const uint32_t vs = static_cast<uint32_t>(value.size());
  size_t n = 0;
  std::memcpy(out.data() + n, &ks, sizeof(ks));
  n += sizeof(ks);
  std::memcpy(out.data() + n, &vs, sizeof(vs));
  n += sizeof(vs);
  std::memcpy(out.data() + n, key.data(), key.size());
  n += key.size();
  std::memcpy(out.data() + n, value.data(), value.size());
  n += value.size();
  return n;
}

// ---- Request decoding (returns nullopt on malformed input) -----------------

struct GetRequest {
  std::span<const std::byte> key;
};

inline std::optional<GetRequest> DecodeGet(std::span<const std::byte> payload) {
  uint16_t ks = 0;
  if (payload.size() < sizeof(ks)) {
    return std::nullopt;
  }
  std::memcpy(&ks, payload.data(), sizeof(ks));
  if (payload.size() < sizeof(ks) + ks) {
    return std::nullopt;
  }
  return GetRequest{payload.subspan(sizeof(ks), ks)};
}

struct PutRequest {
  std::span<const std::byte> key;
  std::span<const std::byte> value;
};

inline std::optional<PutRequest> DecodePut(std::span<const std::byte> payload) {
  uint16_t ks = 0;
  uint32_t vs = 0;
  if (payload.size() < sizeof(ks) + sizeof(vs)) {
    return std::nullopt;
  }
  std::memcpy(&ks, payload.data(), sizeof(ks));
  std::memcpy(&vs, payload.data() + sizeof(ks), sizeof(vs));
  const size_t need = sizeof(ks) + sizeof(vs) + ks + vs;
  if (payload.size() < need) {
    return std::nullopt;
  }
  return PutRequest{payload.subspan(sizeof(ks) + sizeof(vs), ks),
                    payload.subspan(sizeof(ks) + sizeof(vs) + ks, vs)};
}

// ---- Response encoding -------------------------------------------------------

inline size_t EncodeStatus(std::span<std::byte> out, Status status) {
  out[0] = static_cast<std::byte>(status);
  return 1;
}

inline size_t EncodeGetResponse(std::span<std::byte> out, Status status,
                                std::span<const std::byte> value) {
  out[0] = static_cast<std::byte>(status);
  std::memcpy(out.data() + 1, value.data(), value.size());
  return 1 + value.size();
}

inline Status DecodeStatus(std::span<const std::byte> response) {
  return response.empty() ? Status::kError : static_cast<Status>(response[0]);
}

}  // namespace kv

#endif  // SRC_KV_COMMON_H_
