// 3-way Cuckoo hash table backed by registered memory, the structure Pilaf
// exposes to clients for one-sided GETs (paper Sections 1 and 2.3).
//
// Layout (both regions remotely readable):
//   metadata MR: num_slots fixed 24-byte slots
//       [u64 key_hash (0 = empty)][u32 extent_offset]
//       [u16 key_size][u16 value_size][u64 crc64(key|value)]
//   extent MR:   bump-allocated log of [key bytes][value bytes] records
//
// Clients READ a candidate slot, then READ the extent record it points to,
// and validate the CRC; the server updates entries in two steps
// (StageExtent then PublishSlot) so that remote readers racing an update
// observe torn data and retry — exactly the race CRC64 exists to catch.

#ifndef SRC_KV_CUCKOO_H_
#define SRC_KV_CUCKOO_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/mem/pool.h"
#include "src/rdma/memory.h"
#include "src/rdma/node.h"
#include "src/sim/random.h"

namespace kv {

class CuckooTable {
 public:
  static constexpr size_t kSlotBytes = 24;
  static constexpr int kWays = 3;

  struct DecodedSlot {
    uint64_t key_hash = 0;
    uint32_t extent_offset = 0;
    uint16_t key_size = 0;
    uint16_t value_size = 0;
    uint64_t crc = 0;

    bool empty() const { return key_hash == 0; }
  };

  // Everything a remote client needs to run GETs against the table. Both
  // regions are spans inside the node's shared registered pool, so the
  // rkeys name whole arenas and the base offsets locate the table inside
  // them; clients add the base to every slot/extent offset they READ.
  struct View {
    rdma::RemoteKey meta_rkey;
    rdma::RemoteKey extent_rkey;
    uint64_t num_slots = 0;
    uint64_t meta_base = 0;
    uint64_t extent_base = 0;
  };

  struct Stats {
    uint64_t inserts = 0;
    uint64_t updates = 0;
    uint64_t kicks = 0;
    uint64_t failed_inserts = 0;
    uint64_t erases = 0;
  };

  // A staged update: extent bytes already written, slot not yet published.
  struct PendingPut {
    uint64_t slot_index = 0;
    DecodedSlot slot;
  };

  CuckooTable(rdma::Node& node, uint64_t num_slots, size_t extent_bytes, uint64_t seed);

  // Returns both regions to the node's pool (the arenas stay registered).
  ~CuckooTable();

  CuckooTable(const CuckooTable&) = delete;
  CuckooTable& operator=(const CuckooTable&) = delete;

  View view() const;
  uint64_t num_slots() const { return num_slots_; }
  size_t size() const { return size_; }
  double fill() const { return static_cast<double>(size_) / static_cast<double>(num_slots_); }
  const Stats& stats() const { return stats_; }

  // The three candidate slot indices for a key hash.
  static void Positions(uint64_t key_hash, uint64_t num_slots, uint64_t out[kWays]);

  static size_t SlotOffset(uint64_t index) { return index * kSlotBytes; }

  static DecodedSlot DecodeSlot(std::span<const std::byte> bytes);

  // ---- Server-side mutation --------------------------------------------------

  // Writes the record bytes into the extent (reusing the key's old record
  // when it fits) and returns the slot publication to apply later. Between
  // StageExtent and PublishSlot the table is deliberately inconsistent.
  // Returns nullopt when the table or the extent log is exhausted.
  std::optional<PendingPut> StageExtent(std::span<const std::byte> key,
                                        std::span<const std::byte> value);

  // Publishes the staged slot: after this instant readers see a consistent
  // entry again.
  void PublishSlot(const PendingPut& pending);

  // Atomic convenience for local/test use: stage + publish in one step.
  bool Put(std::span<const std::byte> key, std::span<const std::byte> value);

  // Local lookup (server side / tests).
  std::optional<std::vector<std::byte>> Get(std::span<const std::byte> key) const;

  bool Erase(std::span<const std::byte> key);

 private:
  DecodedSlot LoadSlot(uint64_t index) const;
  void StoreSlot(uint64_t index, const DecodedSlot& slot);

  // Finds the slot currently holding `key_hash`+key, or -1.
  int64_t FindSlot(uint64_t key_hash, std::span<const std::byte> key) const;

  // Makes one of the key's candidate slots free, kicking residents along
  // a bounded random walk. Returns the freed index or -1.
  int64_t MakeRoom(uint64_t key_hash);

  bool KeyMatchesExtent(const DecodedSlot& slot, std::span<const std::byte> key) const;

  std::span<std::byte> meta_bytes() const { return meta_span_.bytes(); }
  std::span<std::byte> extent_bytes() const { return extent_span_.bytes(); }

  uint64_t num_slots_;
  std::shared_ptr<mem::Pool> pool_;
  mem::Span meta_span_;    // num_slots fixed 24-byte slots
  mem::Span extent_span_;  // bump-allocated record log
  size_t extent_used_ = 0;
  size_t size_ = 0;
  sim::Rng rng_;
  Stats stats_;
  // Capacity of each extent record by offset, for in-place reuse.
  std::unordered_map<uint32_t, uint32_t> record_capacity_;
};

}  // namespace kv

#endif  // SRC_KV_CUCKOO_H_
