#include "src/kv/farm_store.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/kv/common.h"
#include "src/kv/crc64.h"
#include "src/obs/metrics.h"

namespace kv {

namespace {

uint64_t NormalizeHash(uint64_t h) { return h == 0 ? 1 : h; }

}  // namespace

// Slot layout:
//   [u64 key_hash][u16 key_size][u16 value_size][u32 reserved][u64 crc]
//   [key bytes (max_key)][value bytes (max_value)]
// The table is num_buckets x slots_per_bucket slots, plus `neighborhood`
// extra trailing buckets so neighborhoods never wrap.
FarmStore::FarmStore(rdma::Node& node, const FarmConfig& config)
    : config_(config), node_name_(node.name()) {
  if (config_.num_buckets == 0 || config_.neighborhood <= 0 || config_.slots_per_bucket <= 0) {
    throw std::invalid_argument("farm store: bad geometry");
  }
  cell_bytes_ = kCellHeaderBytes + config_.max_key_bytes + config_.max_value_bytes;
  const uint64_t total_buckets =
      config_.num_buckets + static_cast<uint64_t>(config_.neighborhood);
  // The cell array is a span inside the node's shared registered pool, so
  // store churn recycles arenas instead of re-registering.
  pool_ = mem::Pool::Shared(node);
  cells_span_ = pool_->Alloc(total_buckets * static_cast<uint64_t>(config_.slots_per_bucket) *
                             cell_bytes_);
}

FarmStore::~FarmStore() {
  pool_->Free(cells_span_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"store", "farm"}, {"node", node_name_}};
  reg.GetCounter("kv.store.inserts", labels)->Add(stats_.inserts);
  reg.GetCounter("kv.store.updates", labels)->Add(stats_.updates);
  reg.GetCounter("kv.farm.displacements", labels)->Add(stats_.displacements);
  reg.GetCounter("kv.farm.failed_inserts", labels)->Add(stats_.failed_inserts);
}

FarmStore::View FarmStore::view() const {
  return View{cells_span_.mr->remote_key(), config_.num_buckets, config_.neighborhood,
              config_.slots_per_bucket, cell_bytes_, cells_span_.offset};
}

FarmStore::DecodedCell FarmStore::DecodeCell(std::span<const std::byte> bytes) {
  DecodedCell cell;
  std::memcpy(&cell.key_hash, bytes.data(), 8);
  std::memcpy(&cell.key_size, bytes.data() + 8, 2);
  std::memcpy(&cell.value_size, bytes.data() + 10, 2);
  std::memcpy(&cell.crc, bytes.data() + 16, 8);
  return cell;
}

FarmStore::DecodedCell FarmStore::LoadCell(uint64_t slot_index) const {
  return DecodeCell(cells_bytes().subspan(slot_index * cell_bytes_, kCellHeaderBytes));
}

void FarmStore::StoreCellHeader(uint64_t slot_index, const DecodedCell& cell) {
  std::byte* p = cells_bytes().data() + slot_index * cell_bytes_;
  std::memcpy(p, &cell.key_hash, 8);
  std::memcpy(p + 8, &cell.key_size, 2);
  std::memcpy(p + 10, &cell.value_size, 2);
  const uint32_t reserved = 0;
  std::memcpy(p + 12, &reserved, 4);
  std::memcpy(p + 16, &cell.crc, 8);
}

bool FarmStore::KeyMatches(uint64_t slot_index, const DecodedCell& cell,
                           std::span<const std::byte> key) const {
  if (cell.key_size != key.size()) {
    return false;
  }
  return std::memcmp(cells_bytes().data() + slot_index * cell_bytes_ + kCellHeaderBytes,
                     key.data(), key.size()) == 0;
}

int64_t FarmStore::FindSlot(uint64_t key_hash, std::span<const std::byte> key) const {
  const uint64_t home = Home(key_hash);
  const uint64_t spb = static_cast<uint64_t>(config_.slots_per_bucket);
  for (int b = 0; b < config_.neighborhood; ++b) {
    for (uint64_t s = 0; s < spb; ++s) {
      const uint64_t idx = (home + static_cast<uint64_t>(b)) * spb + s;
      const DecodedCell cell = LoadCell(idx);
      if (!cell.empty() && cell.key_hash == key_hash && KeyMatches(idx, cell, key)) {
        return static_cast<int64_t>(idx);
      }
    }
  }
  return -1;
}

int64_t FarmStore::MakeRoomInNeighborhood(uint64_t home) {
  // Hopscotch displacement, plan-then-commit: linear-probe buckets for a
  // free slot and *plan* a chain of slot moves walking it back into the
  // neighborhood. Only a complete chain is committed — partial chains would
  // shove residents to the far edge of their neighborhoods and poison every
  // later attempt.
  const uint64_t h = static_cast<uint64_t>(config_.neighborhood);
  const uint64_t spb = static_cast<uint64_t>(config_.slots_per_bucket);
  const uint64_t bucket_end = config_.num_buckets + h;
  const uint64_t probe_limit = std::min(home + 4096, bucket_end);
  for (uint64_t probe = home; probe < probe_limit; ++probe) {
    int64_t free_slot = -1;
    for (uint64_t s = 0; s < spb; ++s) {
      if (LoadCell(probe * spb + s).empty()) {
        free_slot = static_cast<int64_t>(probe * spb + s);
        break;
      }
    }
    if (free_slot < 0) {
      continue;
    }
    std::vector<std::pair<uint64_t, uint64_t>> moves;  // (from slot, to slot)
    uint64_t hole = static_cast<uint64_t>(free_slot);
    bool stuck = false;
    while (hole / spb >= home + h && !stuck) {
      stuck = true;
      const uint64_t hole_bucket = hole / spb;
      // A resident of any earlier bucket within H of the hole may move in,
      // provided the hole bucket is still inside ITS neighborhood. Same-
      // bucket moves don't advance the hole and are skipped.
      for (uint64_t cb = hole_bucket - h + 1; cb < hole_bucket && stuck; ++cb) {
        for (uint64_t cs = 0; cs < spb; ++cs) {
          const uint64_t ci = cb * spb + cs;
          const DecodedCell resident = LoadCell(ci);
          if (resident.empty()) {
            continue;
          }
          if (hole_bucket < Home(resident.key_hash) + h) {
            moves.emplace_back(ci, hole);
            hole = ci;
            stuck = false;
            break;
          }
        }
      }
    }
    if (stuck) {
      continue;  // this free slot cannot be walked back; try the next bucket
    }
    // Commit the chain in planned order; each move fills the current hole.
    std::byte* base = cells_bytes().data();
    for (const auto& [from, to] : moves) {
      std::memcpy(base + to * cell_bytes_, base + from * cell_bytes_, cell_bytes_);
      StoreCellHeader(from, DecodedCell{});
      ++stats_.displacements;
    }
    return static_cast<int64_t>(hole);
  }
  return -1;  // no free slot can be walked into the neighborhood
}

std::optional<FarmStore::PendingPut> FarmStore::StageCell(std::span<const std::byte> key,
                                                          std::span<const std::byte> value) {
  if (key.size() > config_.max_key_bytes || value.size() > config_.max_value_bytes) {
    throw std::invalid_argument("farm store: key/value exceeds cell capacity");
  }
  const uint64_t key_hash = NormalizeHash(HashBytes(key));
  const uint64_t spb = static_cast<uint64_t>(config_.slots_per_bucket);
  int64_t idx = FindSlot(key_hash, key);
  if (idx >= 0) {
    ++stats_.updates;
  } else {
    const uint64_t home = Home(key_hash);
    idx = -1;
    for (int b = 0; b < config_.neighborhood && idx < 0; ++b) {
      for (uint64_t s = 0; s < spb; ++s) {
        const uint64_t slot = (home + static_cast<uint64_t>(b)) * spb + s;
        if (LoadCell(slot).empty()) {
          idx = static_cast<int64_t>(slot);
          break;
        }
      }
    }
    if (idx < 0) {
      idx = MakeRoomInNeighborhood(home);
    }
    if (idx < 0) {
      ++stats_.failed_inserts;
      return std::nullopt;
    }
    ++stats_.inserts;
    ++size_;
  }

  // Phase 1: payload bytes land now; the header (with its CRC) follows at
  // PublishCell. In between the cell is torn.
  const size_t data_off = static_cast<uint64_t>(idx) * cell_bytes_ + kCellHeaderBytes;
  rdma::CopyBytes(cells_bytes().subspan(data_off, key.size()), key);
  rdma::CopyBytes(cells_bytes().subspan(data_off + key.size(), value.size()), value);

  PendingPut pending;
  pending.cell_index = static_cast<uint64_t>(idx);
  pending.header.key_hash = key_hash;
  pending.header.key_size = static_cast<uint16_t>(key.size());
  pending.header.value_size = static_cast<uint16_t>(value.size());
  pending.header.crc = Crc64(cells_bytes().subspan(data_off, key.size() + value.size()));
  return pending;
}

void FarmStore::PublishCell(const PendingPut& pending) {
  StoreCellHeader(pending.cell_index, pending.header);
}

bool FarmStore::Put(std::span<const std::byte> key, std::span<const std::byte> value) {
  auto pending = StageCell(key, value);
  if (!pending.has_value()) {
    return false;
  }
  PublishCell(*pending);
  return true;
}

std::optional<std::vector<std::byte>> FarmStore::Get(std::span<const std::byte> key) const {
  const uint64_t key_hash = NormalizeHash(HashBytes(key));
  const int64_t idx = FindSlot(key_hash, key);
  if (idx < 0) {
    return std::nullopt;
  }
  const DecodedCell cell = LoadCell(static_cast<uint64_t>(idx));
  std::vector<std::byte> value(cell.value_size);
  rdma::CopyBytes(value,
                  cells_bytes().subspan(
                      static_cast<uint64_t>(idx) * cell_bytes_ + kCellHeaderBytes + cell.key_size,
                      cell.value_size));
  return value;
}

bool FarmStore::Erase(std::span<const std::byte> key) {
  const uint64_t key_hash = NormalizeHash(HashBytes(key));
  const int64_t idx = FindSlot(key_hash, key);
  if (idx < 0) {
    return false;
  }
  StoreCellHeader(static_cast<uint64_t>(idx), DecodedCell{});
  --size_;
  return true;
}

// ---- Server ---------------------------------------------------------------------

FarmServer::FarmServer(rdma::Fabric& fabric, rdma::Node& node, FarmConfig config)
    : config_([&config] {
        config.channel_options.force_mode = rfp::RfpOptions::ForceMode::kForceReply;
        return config;
      }()),
      rpc_(fabric, node, config_.server_threads, config_.server_options),
      store_(node, config_),
      put_lock_(fabric.engine()) {
  RegisterHandlers();
}

void FarmServer::RegisterHandlers() {
  rpc_.RegisterAsyncHandler(
      kRpcPut,
      [this](const rfp::HandlerContext&, std::span<const std::byte> req,
             std::span<std::byte> resp) -> sim::Task<rfp::HandlerResult> {
        const auto put = DecodePut(req);
        if (!put.has_value()) {
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError), 0};
        }
        sim::Engine& engine = rpc_.node().fabric()->engine();
        co_await put_lock_.Lock();
        const auto pending = store_.StageCell(put->key, put->value);
        if (!pending.has_value()) {
          put_lock_.Unlock();
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError), 0};
        }
        const auto window = static_cast<sim::Time>(
            config_.race_window_fraction * static_cast<double>(config_.put_process_ns));
        co_await engine.Sleep(window);
        store_.PublishCell(*pending);
        put_lock_.Unlock();
        co_return rfp::HandlerResult{EncodeStatus(resp, Status::kOk),
                                     config_.put_process_ns - window};
      });
}

// ---- Client ---------------------------------------------------------------------

FarmClient::FarmClient(rdma::Fabric& fabric, rdma::Node& client_node, FarmServer& server,
                       int put_thread)
    : server_(server), view_(server.view()) {
  auto [cqp, sqp] = fabric.ConnectRc(client_node, server.node());
  (void)sqp;
  qp_ = cqp;
  pool_ = mem::Pool::Shared(client_node);
  read_span_ = pool_->Alloc(
      view_.cell_bytes * static_cast<size_t>(view_.neighborhood * view_.slots_per_bucket));
  rfp::Channel* channel =
      server.rpc().AcceptChannel(client_node, server.config().channel_options, put_thread);
  put_stub_ = std::make_unique<rfp::RpcClient>(channel);
  scratch_.resize(server.config().channel_options.max_message_bytes);
}

FarmClient::~FarmClient() { pool_->Free(read_span_); }

sim::Task<std::optional<size_t>> FarmClient::Get(std::span<const std::byte> key,
                                                 std::span<std::byte> value_out) {
  sim::Engine& engine = server_.node().fabric()->engine();
  const sim::Time start = engine.now();
  const uint64_t key_hash = [&] {
    const uint64_t h = HashBytes(key);
    return h == 0 ? 1 : h;
  }();
  const uint64_t home = key_hash % view_.num_buckets;
  const int slots = view_.neighborhood * view_.slots_per_bucket;
  const uint32_t read_bytes = static_cast<uint32_t>(view_.cell_bytes * static_cast<size_t>(slots));
  const size_t home_offset =
      home * static_cast<uint64_t>(view_.slots_per_bucket) * view_.cell_bytes;

  ++stats_.gets;
  for (int attempt = 0; attempt < server_.config().max_get_retries; ++attempt) {
    // ONE one-sided READ covering the whole neighborhood (FaRM's pattern).
    rdma::WorkCompletion wc = co_await qp_->Read(*read_span_.mr, read_span_.offset, view_.rkey,
                                                 view_.base + home_offset, read_bytes);
    if (!wc.ok()) {
      throw std::runtime_error("farm: neighborhood read failed");
    }
    ++stats_.neighborhood_reads;
    stats_.bytes_read += read_bytes;

    bool torn = false;
    for (int i = 0; i < slots; ++i) {
      const auto cell_span =
          read_buf().subspan(static_cast<size_t>(i) * view_.cell_bytes, view_.cell_bytes);
      const FarmStore::DecodedCell cell = FarmStore::DecodeCell(cell_span);
      if (cell.empty() || cell.key_hash != key_hash) {
        continue;
      }
      const auto record =
          cell_span.subspan(FarmStore::kCellHeaderBytes,
                            static_cast<size_t>(cell.key_size) + cell.value_size);
      if (Crc64(record) != cell.crc) {
        ++stats_.crc_failures;
        torn = true;
        break;
      }
      if (cell.key_size != key.size() ||
          std::memcmp(record.data(), key.data(), key.size()) != 0) {
        continue;  // full-hash collision within the neighborhood
      }
      if (cell.value_size > value_out.size()) {
        throw std::length_error("farm: value larger than output buffer");
      }
      rdma::CopyBytes(value_out.subspan(0, cell.value_size),
                      record.subspan(cell.key_size, cell.value_size));
      stats_.bytes_useful += key.size() + cell.value_size;
      get_latency_.Record(engine.now() - start);
      co_return cell.value_size;
    }
    if (!torn) {
      ++stats_.not_found;
      get_latency_.Record(engine.now() - start);
      co_return std::nullopt;
    }
    ++stats_.retries;
  }
  throw std::runtime_error("farm: GET exceeded retry budget");
}

sim::Task<bool> FarmClient::Put(std::span<const std::byte> key,
                                std::span<const std::byte> value) {
  const size_t req = EncodePut(scratch_, key, value);
  const size_t n = co_await put_stub_->Call(
      kRpcPut, std::span<const std::byte>(scratch_.data(), req), scratch_);
  ++stats_.puts;
  co_return n >= 1 &&
      DecodeStatus(std::span<const std::byte>(scratch_.data(), n)) == Status::kOk;
}

}  // namespace kv
