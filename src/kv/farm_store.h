// FaRM-style key-value store (Dragojevic et al., NSDI'14), the second
// server-bypass system the paper discusses (Section 5).
//
// FaRM places entries in a chained-associative hopscotch hash table: a key
// lives within a neighborhood of H consecutive buckets of its home bucket,
// each bucket holding several slots, so a client GET is a single one-sided
// READ of the whole neighborhood — N * (slot bytes) on the wire to use one
// entry. That is the trade the paper calls out: fewer round trips than
// Pilaf, but "a lot of the bandwidth and MOPS will be wasted", with N
// usually larger than 6. PUTs go through server-reply RPC, like FaRM's
// object writes through its transaction layer.
//
// Cells are fixed-size inline records protected by a CRC64 (standing in for
// FaRM's cache-line version numbers): a reader that races a server-side
// update sees a torn cell and retries.

#ifndef SRC_KV_FARM_STORE_H_
#define SRC_KV_FARM_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/mem/pool.h"
#include "src/rdma/fabric.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/resource.h"
#include "src/sim/stats.h"

namespace kv {

struct FarmConfig {
  uint64_t num_buckets = 1 << 18;
  int slots_per_bucket = 4;    // associativity (FaRM's chained-associative
                               // scheme; keeps displacement viable past 75%)
  int neighborhood = 8;        // H: buckets fetched per GET
  uint16_t max_key_bytes = 16;
  uint16_t max_value_bytes = 64;  // cell capacity (sizes the READ)
  // Server-side PUT cost: hopscotch maintenance + CRC.
  sim::Time put_process_ns = 1200;
  double race_window_fraction = 0.6;
  int max_get_retries = 64;
  int server_threads = 2;
  rfp::RfpOptions channel_options;  // forced to server-reply in the ctor
  rfp::ServerOptions server_options;
};

class FarmStore {
 public:
  struct DecodedCell {
    uint64_t key_hash = 0;  // 0 = empty
    uint16_t key_size = 0;
    uint16_t value_size = 0;
    uint64_t crc = 0;

    bool empty() const { return key_hash == 0; }
  };

  struct View {
    rdma::RemoteKey rkey;
    uint64_t num_buckets = 0;
    int neighborhood = 0;
    int slots_per_bucket = 0;
    size_t cell_bytes = 0;  // per slot
    // Offset of the cell array inside the pooled region the rkey names;
    // clients add it to every neighborhood offset they READ.
    uint64_t base = 0;
  };

  struct Stats {
    uint64_t inserts = 0;
    uint64_t updates = 0;
    uint64_t displacements = 0;  // hopscotch moves
    uint64_t failed_inserts = 0;
  };

  FarmStore(rdma::Node& node, const FarmConfig& config);

  // Flushes Stats into the default metrics registry ({store: "farm"}).
  ~FarmStore();

  FarmStore(const FarmStore&) = delete;
  FarmStore& operator=(const FarmStore&) = delete;

  View view() const;
  size_t cell_bytes() const { return cell_bytes_; }
  size_t size() const { return size_; }
  const Stats& stats() const { return stats_; }

  static constexpr size_t kCellHeaderBytes = 24;
  static DecodedCell DecodeCell(std::span<const std::byte> bytes);

  // Home bucket index for a key hash.
  uint64_t Home(uint64_t key_hash) const { return key_hash % config_.num_buckets; }

  // Total slots fetched per GET (the paper's N).
  int SlotsPerNeighborhood() const {
    return config_.neighborhood * config_.slots_per_bucket;
  }

  // ---- Server-side mutation (two-phase, like the Pilaf store) --------------

  struct PendingPut {
    uint64_t cell_index = 0;
    DecodedCell header;
  };

  std::optional<PendingPut> StageCell(std::span<const std::byte> key,
                                      std::span<const std::byte> value);
  void PublishCell(const PendingPut& pending);
  bool Put(std::span<const std::byte> key, std::span<const std::byte> value);
  std::optional<std::vector<std::byte>> Get(std::span<const std::byte> key) const;
  bool Erase(std::span<const std::byte> key);

 private:
  // Slot index = bucket * slots_per_bucket + slot.
  DecodedCell LoadCell(uint64_t slot_index) const;
  void StoreCellHeader(uint64_t slot_index, const DecodedCell& cell);
  bool KeyMatches(uint64_t slot_index, const DecodedCell& cell,
                  std::span<const std::byte> key) const;
  int64_t FindSlot(uint64_t key_hash, std::span<const std::byte> key) const;
  // Frees a slot inside the key's neighborhood via hopscotch displacement
  // (plan-then-commit); -1 when impossible.
  int64_t MakeRoomInNeighborhood(uint64_t home);

  std::span<std::byte> cells_bytes() const { return cells_span_.bytes(); }

  FarmConfig config_;
  std::string node_name_;
  size_t cell_bytes_;
  std::shared_ptr<mem::Pool> pool_;
  mem::Span cells_span_;  // pooled cell array (registered, remotely readable)
  size_t size_ = 0;
  Stats stats_;
};

class FarmServer {
 public:
  FarmServer(rdma::Fabric& fabric, rdma::Node& node, FarmConfig config = {});

  const FarmConfig& config() const { return config_; }
  FarmStore& store() { return store_; }
  FarmStore::View view() const { return store_.view(); }
  rfp::RpcServer& rpc() { return rpc_; }
  rdma::Node& node() { return rpc_.node(); }

  void Start() { rpc_.Start(); }
  void Stop() { rpc_.Stop(); }

  bool Preload(std::span<const std::byte> key, std::span<const std::byte> value) {
    return store_.Put(key, value);
  }

 private:
  void RegisterHandlers();

  FarmConfig config_;
  rfp::RpcServer rpc_;
  FarmStore store_;
  sim::Mutex put_lock_;
};

class FarmClient {
 public:
  struct Stats {
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t neighborhood_reads = 0;
    uint64_t bytes_read = 0;      // wire bytes fetched by GETs
    uint64_t bytes_useful = 0;    // key+value bytes actually consumed
    uint64_t crc_failures = 0;
    uint64_t retries = 0;
    uint64_t not_found = 0;

    double WasteFactor() const {
      return bytes_useful == 0 ? 0.0
                               : static_cast<double>(bytes_read) /
                                     static_cast<double>(bytes_useful);
    }
  };

  FarmClient(rdma::Fabric& fabric, rdma::Node& client_node, FarmServer& server, int put_thread);

  // Returns the landing buffer to the client node's pool.
  ~FarmClient();

  // One-sided GET: a single READ of the key's whole neighborhood.
  sim::Task<std::optional<size_t>> Get(std::span<const std::byte> key,
                                       std::span<std::byte> value_out);

  sim::Task<bool> Put(std::span<const std::byte> key, std::span<const std::byte> value);

  const Stats& stats() const { return stats_; }
  const sim::Histogram& get_latency() const { return get_latency_; }

 private:
  std::span<std::byte> read_buf() const { return read_span_.bytes(); }

  FarmServer& server_;
  FarmStore::View view_;
  rdma::QueuePair* qp_;
  std::shared_ptr<mem::Pool> pool_;
  mem::Span read_span_;  // pooled landing area for neighborhood READs
  std::unique_ptr<rfp::RpcClient> put_stub_;
  std::vector<std::byte> scratch_;
  Stats stats_;
  sim::Histogram get_latency_;
};

}  // namespace kv

#endif  // SRC_KV_FARM_STORE_H_
