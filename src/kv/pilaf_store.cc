#include "src/kv/pilaf_store.h"

#include <cstring>
#include <stdexcept>

#include "src/kv/common.h"
#include "src/kv/crc64.h"
#include "src/obs/metrics.h"

namespace kv {

PilafServer::PilafServer(rdma::Fabric& fabric, rdma::Node& node, PilafConfig config)
    : config_([&config] {
        // Pilaf serves PUT results by replying; fetching would be pointless
        // for a path that exists precisely because GETs bypass the CPU.
        config.channel_options.force_mode = rfp::RfpOptions::ForceMode::kForceReply;
        return config;
      }()),
      rpc_(fabric, node, config_.server_threads, config_.server_options),
      table_(node, config_.num_slots, config_.extent_bytes, config_.seed),
      put_lock_(fabric.engine()) {
  RegisterHandlers();
}

void PilafServer::RegisterHandlers() {
  rpc_.RegisterAsyncHandler(
      kRpcPut,
      [this](const rfp::HandlerContext&, std::span<const std::byte> req,
             std::span<std::byte> resp) -> sim::Task<rfp::HandlerResult> {
        const auto put = DecodePut(req);
        if (!put.has_value()) {
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError), 0};
        }
        sim::Engine& engine = rpc_.node().fabric()->engine();
        co_await put_lock_.Lock();
        // Two-phase update: extent bytes land first, the slot (with its new
        // CRC) is published only after the race window elapses. One-sided
        // readers in between see torn data and must retry.
        const auto pending = table_.StageExtent(put->key, put->value);
        if (!pending.has_value()) {
          put_lock_.Unlock();
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError), 0};
        }
        const auto window =
            static_cast<sim::Time>(config_.race_window_fraction *
                                   static_cast<double>(config_.put_process_ns));
        co_await engine.Sleep(window);
        table_.PublishSlot(*pending);
        put_lock_.Unlock();
        co_return rfp::HandlerResult{EncodeStatus(resp, Status::kOk),
                                     config_.put_process_ns - window};
      });
}

PilafClient::PilafClient(rdma::Fabric& fabric, rdma::Node& client_node, PilafServer& server,
                         int put_thread)
    : server_(server), view_(server.view()) {
  auto [cqp, sqp] = fabric.ConnectRc(client_node, server.node());
  (void)sqp;
  qp_ = cqp;
  pool_ = mem::Pool::Shared(client_node);
  read_span_ = pool_->Alloc(CuckooTable::kSlotBytes + 2 * (UINT16_MAX + 1));
  rfp::Channel* channel = server.rpc().AcceptChannel(
      client_node, server.config().channel_options, put_thread);
  put_stub_ = std::make_unique<rfp::RpcClient>(channel);
  scratch_.resize(server.config().channel_options.max_message_bytes);
}

PilafClient::~PilafClient() {
  pool_->Free(read_span_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"store", "pilaf"}, {"client", qp_->local_node()->name()}};
  reg.GetCounter("kv.store.gets", labels)->Add(stats_.gets);
  reg.GetCounter("kv.store.puts", labels)->Add(stats_.puts);
  reg.GetCounter("kv.pilaf.slot_reads", labels)->Add(stats_.slot_reads);
  reg.GetCounter("kv.pilaf.extent_reads", labels)->Add(stats_.extent_reads);
  reg.GetCounter("kv.pilaf.crc_failures", labels)->Add(stats_.crc_failures);
  reg.GetCounter("kv.pilaf.hash_misses", labels)->Add(stats_.hash_misses);
  reg.GetCounter("kv.pilaf.retries", labels)->Add(stats_.retries);
  reg.GetCounter("kv.store.misses", labels)->Add(stats_.not_found);
  reg.GetHistogram("kv.pilaf.get_latency_ns", labels)->Merge(get_latency_);
}

sim::Task<std::optional<size_t>> PilafClient::Get(std::span<const std::byte> key,
                                                  std::span<std::byte> value_out) {
  sim::Engine& engine = server_.node().fabric()->engine();
  const sim::Time start = engine.now();
  const uint64_t key_hash = [&] {
    const uint64_t h = HashBytes(key);
    return h == 0 ? 1 : h;
  }();
  uint64_t positions[CuckooTable::kWays];
  CuckooTable::Positions(key_hash, view_.num_slots, positions);

  ++stats_.gets;
  for (int attempt = 0; attempt < server_.config().max_get_retries; ++attempt) {
    bool torn = false;
    for (uint64_t pos : positions) {
      // Probe one candidate slot (one-sided READ of 24 bytes).
      rdma::WorkCompletion wc =
          co_await qp_->Read(*read_span_.mr, read_span_.offset, view_.meta_rkey,
                             view_.meta_base + CuckooTable::SlotOffset(pos),
                             CuckooTable::kSlotBytes);
      if (!wc.ok()) {
        throw std::runtime_error("pilaf: slot read failed");
      }
      ++stats_.slot_reads;
      const CuckooTable::DecodedSlot slot =
          CuckooTable::DecodeSlot(read_buf().subspan(0, CuckooTable::kSlotBytes));
      if (slot.empty() || slot.key_hash != key_hash) {
        ++stats_.hash_misses;
        continue;
      }
      // Fetch the record the slot points to (second one-sided READ).
      const uint32_t record_len = slot.key_size + slot.value_size;
      rdma::WorkCompletion wc2 = co_await qp_->Read(
          *read_span_.mr, read_span_.offset + CuckooTable::kSlotBytes, view_.extent_rkey,
          view_.extent_base + slot.extent_offset, record_len);
      if (!wc2.ok()) {
        throw std::runtime_error("pilaf: extent read failed");
      }
      ++stats_.extent_reads;
      const auto record = read_buf().subspan(CuckooTable::kSlotBytes, record_len);
      if (Crc64(record) != slot.crc) {
        // A concurrent PUT tore this entry: restart the whole lookup.
        ++stats_.crc_failures;
        torn = true;
        break;
      }
      if (slot.key_size != key.size() ||
          std::memcmp(record.data(), key.data(), key.size()) != 0) {
        ++stats_.hash_misses;  // full-hash collision: keep probing
        continue;
      }
      if (slot.value_size > value_out.size()) {
        throw std::length_error("pilaf: value larger than output buffer");
      }
      rdma::CopyBytes(value_out.subspan(0, slot.value_size),
                      record.subspan(slot.key_size, slot.value_size));
      get_latency_.Record(engine.now() - start);
      co_return slot.value_size;
    }
    if (!torn) {
      ++stats_.not_found;
      get_latency_.Record(engine.now() - start);
      co_return std::nullopt;
    }
    ++stats_.retries;
  }
  throw std::runtime_error("pilaf: GET exceeded retry budget (livelock?)");
}

sim::Task<bool> PilafClient::Put(std::span<const std::byte> key,
                                 std::span<const std::byte> value) {
  const size_t req = EncodePut(scratch_, key, value);
  const size_t n = co_await put_stub_->Call(
      kRpcPut, std::span<const std::byte>(scratch_.data(), req), scratch_);
  ++stats_.puts;
  co_return n >= 1 &&
      DecodeStatus(std::span<const std::byte>(scratch_.data(), n)) == Status::kOk;
}

}  // namespace kv
