// Lease-based client-side caching, in the style of C-Hint (Wang et al.,
// SoCC'14) — the third related-work system the paper discusses (Section 5:
// "Pilaf and C-Hint have to propose solutions to reason about data
// consistency ... [C-Hint relies on] lease-based mechanisms").
//
// The wrapper layers an LRU value cache over a Pilaf-style one-sided
// client: a GET within the lease window is served locally with ZERO network
// operations; expired or missing entries fall through to the underlying
// one-sided READ path and refresh the cache; the client's own PUTs
// write-through and invalidate locally.
//
// The consistency model this buys is *bounded staleness*: a cached read may
// be up to `lease_ns` older than the latest committed write by another
// client. That bound — and the reasoning burden it pushes onto every
// application — is exactly the cost the paper contrasts with RFP, which
// gets its throughput with linearizable server-side processing and no
// application-specific cache logic. bench_ext_lease_cache measures the
// trade directly.

#ifndef SRC_KV_LEASE_CACHE_H_
#define SRC_KV_LEASE_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/kv/pilaf_store.h"
#include "src/sim/engine.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace kv {

struct LeaseCacheConfig {
  // Validity window of a cached entry from the moment it was fetched.
  sim::Time lease_ns = sim::Micros(100);
  // Cache capacity in entries (LRU eviction beyond).
  size_t capacity = 4096;
};

class LeaseCachedClient {
 public:
  struct Stats {
    uint64_t gets = 0;
    uint64_t cache_hits = 0;     // served locally, zero network ops
    uint64_t cache_misses = 0;   // absent from the cache
    uint64_t lease_expired = 0;  // present but stale: refetched
    uint64_t evictions = 0;
    uint64_t puts = 0;

    double HitRate() const {
      return gets == 0 ? 0.0
                       : static_cast<double>(cache_hits) / static_cast<double>(gets);
    }
  };

  // Wraps (and does not own) a PilafClient; `engine` supplies lease clocks.
  LeaseCachedClient(sim::Engine& engine, PilafClient* base, LeaseCacheConfig config = {});

  LeaseCachedClient(const LeaseCachedClient&) = delete;
  LeaseCachedClient& operator=(const LeaseCachedClient&) = delete;

  // GET: local cache within the lease, else one-sided READ + cache refresh.
  sim::Task<std::optional<size_t>> Get(std::span<const std::byte> key,
                                       std::span<std::byte> value_out);

  // PUT: write-through to the server, then refresh the local entry (the
  // writer itself always observes its own writes).
  sim::Task<bool> Put(std::span<const std::byte> key, std::span<const std::byte> value);

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string key;
    std::vector<std::byte> value;
    sim::Time fetched_at = 0;
  };
  using LruList = std::list<Entry>;

  bool Fresh(const Entry& entry) const {
    return engine_.now() - entry.fetched_at < config_.lease_ns;
  }

  // Inserts or refreshes an entry and promotes it to most-recent.
  void Install(std::string key, std::span<const std::byte> value);

  sim::Engine& engine_;
  PilafClient* base_;
  LeaseCacheConfig config_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> entries_;
  Stats stats_;
};

}  // namespace kv

#endif  // SRC_KV_LEASE_CACHE_H_
