// RDMA-Memcached-style baseline (Jose et al., ICPP'11), the paper's second
// server-reply comparison point (Section 4.2).
//
// Unlike Jakiro's EREW partitions, all server threads share one hash table
// and one global LRU list, coordinated by a coarse cache lock — so the
// system is CPU/coordination-bound rather than NIC-bound (paper Fig 12),
// degrades under write-intensive load (Fig 16), and *benefits* from skew
// because hot entries stay cache-resident (Fig 19). Results return via
// server-reply, capping it at the out-bound rate even when CPU would allow
// more.

#ifndef SRC_KV_MEMCACHED_STORE_H_
#define SRC_KV_MEMCACHED_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mem/pool.h"
#include "src/rdma/fabric.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/resource.h"

namespace kv {

struct MemcachedConfig {
  int server_threads = 16;
  // Per-op CPU outside the lock: full memcached item path (hashing, slab
  // accounting, protocol handling). PUTs also take the slab allocator path.
  sim::Time get_cpu_ns = 8200;
  sim::Time put_cpu_ns = 14000;
  // Critical section under the global cache lock: a GET is hash + LRU
  // splice; a PUT additionally runs slab allocation and eviction
  // accounting, so its lock hold is several times longer.
  sim::Time get_lock_ns = 650;
  sim::Time put_lock_ns = 2500;
  // CPU-cache locality emulation: ops on one of the `hot_set_size` most
  // recently touched keys cost cpu * hot_discount (drives the skewed-load
  // advantage in Fig 19).
  double hot_discount = 0.35;
  size_t hot_set_size = 4096;
  // Item capacity before global-LRU eviction.
  size_t capacity_items = 4u << 20;
  rfp::RfpOptions channel_options;  // forced to server-reply in the ctor
  rfp::ServerOptions server_options;
};

class MemcachedServer {
 public:
  struct Stats {
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t hot_hits = 0;
  };

  MemcachedServer(rdma::Fabric& fabric, rdma::Node& node, MemcachedConfig config = {});

  // Flushes Stats into the default metrics registry ({store: "memcached"}).
  ~MemcachedServer();

  MemcachedServer(const MemcachedServer&) = delete;
  MemcachedServer& operator=(const MemcachedServer&) = delete;

  const MemcachedConfig& config() const { return config_; }
  rfp::RpcServer& rpc() { return rpc_; }
  rdma::Node& node() { return rpc_.node(); }
  const Stats& stats() const { return stats_; }
  size_t size() const { return items_.size(); }

  void Start() { rpc_.Start(); }
  void Stop() { rpc_.Stop(); }

  // Instant pre-fill (no simulated time).
  void Preload(std::span<const std::byte> key, std::span<const std::byte> value);

 private:
  // Values live in registered slabs from the node's shared pool (the
  // memcached slab allocator maps onto mem::Pool's size classes). The GET
  // path still stages a copy through the response ring — server-reply has
  // no zero-copy fast path; pooling here is about slab reuse, not bypass.
  struct Item {
    std::string key;
    mem::Span span;
    uint32_t len = 0;
    std::span<const std::byte> value() const {
      return span.mr->bytes().subspan(span.offset, len);
    }
  };
  using LruList = std::list<Item>;

  void RegisterHandlers();
  // Hash + LRU touch under the lock; returns the item or nullptr.
  Item* LookupAndTouch(const std::string& key);
  void Store(const std::string& key, std::span<const std::byte> value);
  // CPU-cache locality model: true (and refreshed) when `key_hash` was
  // touched recently.
  bool TouchHotSet(uint64_t key_hash);

  MemcachedConfig config_;
  rfp::RpcServer rpc_;
  std::shared_ptr<mem::Pool> pool_;
  sim::Mutex cache_lock_;
  LruList lru_;  // front = most recent
  std::unordered_map<std::string, LruList::iterator> items_;
  std::list<uint64_t> hot_list_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> hot_index_;
  Stats stats_;
};

// Client stub: plain RPC calls over a server-reply channel.
class MemcachedClient {
 public:
  MemcachedClient(MemcachedServer& server, rdma::Node& client_node, int thread);

  sim::Task<std::optional<size_t>> Get(std::span<const std::byte> key,
                                       std::span<std::byte> value_out);
  sim::Task<bool> Put(std::span<const std::byte> key, std::span<const std::byte> value);

  uint64_t operations() const { return operations_; }
  const sim::Histogram& latency() const { return stub_->latency(); }
  rfp::Channel* channel() { return channel_; }

 private:
  rfp::Channel* channel_ = nullptr;
  std::unique_ptr<rfp::RpcClient> stub_;
  std::vector<std::byte> scratch_;
  uint64_t operations_ = 0;
};

}  // namespace kv

#endif  // SRC_KV_MEMCACHED_STORE_H_
