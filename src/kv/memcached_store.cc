#include "src/kv/memcached_store.h"

#include <cstring>
#include <stdexcept>

#include "src/kv/common.h"
#include "src/obs/metrics.h"
#include "src/rdma/memory.h"

namespace kv {

namespace {

std::string KeyString(std::span<const std::byte> key) {
  return std::string(reinterpret_cast<const char*>(key.data()), key.size());
}

}  // namespace

MemcachedServer::MemcachedServer(rdma::Fabric& fabric, rdma::Node& node, MemcachedConfig config)
    : config_([&config] {
        config.channel_options.force_mode = rfp::RfpOptions::ForceMode::kForceReply;
        return config;
      }()),
      rpc_(fabric, node, config_.server_threads, config_.server_options),
      pool_(mem::Pool::Shared(node)),
      cache_lock_(fabric.engine()) {
  RegisterHandlers();
}

MemcachedServer::~MemcachedServer() {
  for (Item& item : lru_) {
    pool_->Free(item.span);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"store", "memcached"}, {"node", rpc_.node().name()}};
  reg.GetCounter("kv.store.gets", labels)->Add(stats_.gets);
  reg.GetCounter("kv.store.puts", labels)->Add(stats_.puts);
  reg.GetCounter("kv.store.hits", labels)->Add(stats_.hits);
  reg.GetCounter("kv.store.misses", labels)->Add(stats_.misses);
  reg.GetCounter("kv.store.evictions", labels)->Add(stats_.evictions);
  reg.GetCounter("kv.store.hot_hits", labels)->Add(stats_.hot_hits);
}

bool MemcachedServer::TouchHotSet(uint64_t key_hash) {
  auto it = hot_index_.find(key_hash);
  if (it != hot_index_.end()) {
    hot_list_.splice(hot_list_.begin(), hot_list_, it->second);
    return true;
  }
  hot_list_.push_front(key_hash);
  hot_index_[key_hash] = hot_list_.begin();
  if (hot_list_.size() > config_.hot_set_size) {
    hot_index_.erase(hot_list_.back());
    hot_list_.pop_back();
  }
  return false;
}

MemcachedServer::Item* MemcachedServer::LookupAndTouch(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return &*it->second;
}

void MemcachedServer::Store(const std::string& key, std::span<const std::byte> value) {
  auto it = items_.find(key);
  if (it != items_.end()) {
    Item& item = *it->second;
    if (value.size() > item.span.size) {
      // Outgrew the slab chunk: swap in a larger one (memcached's
      // slab-class promotion).
      pool_->Free(item.span);
      item.span = pool_->Alloc(value.size());
    }
    item.len = static_cast<uint32_t>(value.size());
    rdma::CopyBytes(item.span.mr->bytes().subspan(item.span.offset, value.size()), value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (items_.size() >= config_.capacity_items) {
    pool_->Free(lru_.back().span);
    items_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  Item item{key, pool_->Alloc(value.size()), static_cast<uint32_t>(value.size())};
  rdma::CopyBytes(item.span.mr->bytes().subspan(item.span.offset, value.size()), value);
  lru_.push_front(std::move(item));
  items_[key] = lru_.begin();
}

void MemcachedServer::Preload(std::span<const std::byte> key, std::span<const std::byte> value) {
  Store(KeyString(key), value);
}

void MemcachedServer::RegisterHandlers() {
  sim::Engine& engine = rpc_.node().fabric()->engine();

  rpc_.RegisterAsyncHandler(
      kRpcGet,
      [this, &engine](const rfp::HandlerContext&, std::span<const std::byte> req,
                      std::span<std::byte> resp) -> sim::Task<rfp::HandlerResult> {
        const auto get = DecodeGet(req);
        if (!get.has_value()) {
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError), 0};
        }
        const uint64_t h = HashBytes(get->key);
        const bool hot = TouchHotSet(h);
        if (hot) {
          ++stats_.hot_hits;
        }
        const double scale = hot ? config_.hot_discount : 1.0;
        co_await engine.Sleep(
            static_cast<sim::Time>(static_cast<double>(config_.get_cpu_ns) * scale));
        co_await cache_lock_.Lock();
        // Locality also shortens the critical section: the hash chain and
        // LRU nodes of a hot key are cache-resident.
        co_await engine.Sleep(
            static_cast<sim::Time>(static_cast<double>(config_.get_lock_ns) * scale));
        Item* item = LookupAndTouch(KeyString(get->key));
        ++stats_.gets;
        size_t n = 0;
        if (item == nullptr) {
          ++stats_.misses;
          n = EncodeStatus(resp, Status::kNotFound);
        } else {
          ++stats_.hits;
          n = EncodeGetResponse(resp, Status::kOk, item->value());
        }
        cache_lock_.Unlock();
        co_return rfp::HandlerResult{n, 0};
      });

  rpc_.RegisterAsyncHandler(
      kRpcPut,
      [this, &engine](const rfp::HandlerContext&, std::span<const std::byte> req,
                      std::span<std::byte> resp) -> sim::Task<rfp::HandlerResult> {
        const auto put = DecodePut(req);
        if (!put.has_value()) {
          co_return rfp::HandlerResult{EncodeStatus(resp, Status::kError), 0};
        }
        const uint64_t h = HashBytes(put->key);
        const bool hot = TouchHotSet(h);
        if (hot) {
          ++stats_.hot_hits;
        }
        const double scale = hot ? config_.hot_discount : 1.0;
        co_await engine.Sleep(
            static_cast<sim::Time>(static_cast<double>(config_.put_cpu_ns) * scale));
        co_await cache_lock_.Lock();
        co_await engine.Sleep(
            static_cast<sim::Time>(static_cast<double>(config_.put_lock_ns) * scale));
        Store(KeyString(put->key), put->value);
        ++stats_.puts;
        cache_lock_.Unlock();
        co_return rfp::HandlerResult{EncodeStatus(resp, Status::kOk), 0};
      });
}

MemcachedClient::MemcachedClient(MemcachedServer& server, rdma::Node& client_node, int thread) {
  channel_ = server.rpc().AcceptChannel(client_node, server.config().channel_options, thread);
  stub_ = std::make_unique<rfp::RpcClient>(channel_);
  scratch_.resize(server.config().channel_options.max_message_bytes);
}

sim::Task<std::optional<size_t>> MemcachedClient::Get(std::span<const std::byte> key,
                                                      std::span<std::byte> value_out) {
  const size_t req = EncodeGet(scratch_, key);
  const size_t n =
      co_await stub_->Call(kRpcGet, std::span<const std::byte>(scratch_.data(), req), scratch_);
  ++operations_;
  if (n < 1 || DecodeStatus(std::span<const std::byte>(scratch_.data(), n)) != Status::kOk) {
    co_return std::nullopt;
  }
  const size_t value_size = n - 1;
  if (value_size > value_out.size()) {
    throw std::length_error("memcached: value larger than output buffer");
  }
  rdma::CopyBytes(value_out.subspan(0, value_size),
                  std::span<const std::byte>(scratch_.data() + 1, value_size));
  co_return value_size;
}

sim::Task<bool> MemcachedClient::Put(std::span<const std::byte> key,
                                     std::span<const std::byte> value) {
  const size_t req = EncodePut(scratch_, key, value);
  const size_t n =
      co_await stub_->Call(kRpcPut, std::span<const std::byte>(scratch_.data(), req), scratch_);
  ++operations_;
  co_return n >= 1 &&
      DecodeStatus(std::span<const std::byte>(scratch_.data(), n)) == Status::kOk;
}

}  // namespace kv
