#include "src/kv/cuckoo.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/kv/common.h"
#include "src/kv/crc64.h"

namespace kv {

namespace {

constexpr uint64_t kWaySalt[CuckooTable::kWays] = {0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
                                                   0x165667b19e3779f9ULL};
constexpr int kMaxKickDepth = 500;

uint64_t NormalizeHash(uint64_t h) { return h == 0 ? 1 : h; }

}  // namespace

CuckooTable::CuckooTable(rdma::Node& node, uint64_t num_slots, size_t extent_bytes, uint64_t seed)
    : num_slots_(num_slots), rng_(seed) {
  if (num_slots == 0) {
    throw std::invalid_argument("cuckoo: need at least one slot");
  }
  // Both regions come from the node's shared registered pool: table churn
  // (tests, restarts) recycles the arenas instead of re-registering.
  pool_ = mem::Pool::Shared(node);
  meta_span_ = pool_->Alloc(num_slots * kSlotBytes);
  extent_span_ = pool_->Alloc(extent_bytes);
}

CuckooTable::~CuckooTable() {
  pool_->Free(meta_span_);
  pool_->Free(extent_span_);
}

CuckooTable::View CuckooTable::view() const {
  return View{meta_span_.mr->remote_key(), extent_span_.mr->remote_key(), num_slots_,
              meta_span_.offset, extent_span_.offset};
}

void CuckooTable::Positions(uint64_t key_hash, uint64_t num_slots, uint64_t out[kWays]) {
  for (int i = 0; i < kWays; ++i) {
    out[i] = sim::Mix64(key_hash ^ kWaySalt[i]) % num_slots;
  }
}

CuckooTable::DecodedSlot CuckooTable::DecodeSlot(std::span<const std::byte> bytes) {
  DecodedSlot slot;
  std::memcpy(&slot.key_hash, bytes.data(), 8);
  std::memcpy(&slot.extent_offset, bytes.data() + 8, 4);
  std::memcpy(&slot.key_size, bytes.data() + 12, 2);
  std::memcpy(&slot.value_size, bytes.data() + 14, 2);
  std::memcpy(&slot.crc, bytes.data() + 16, 8);
  return slot;
}

CuckooTable::DecodedSlot CuckooTable::LoadSlot(uint64_t index) const {
  return DecodeSlot(meta_bytes().subspan(SlotOffset(index), kSlotBytes));
}

void CuckooTable::StoreSlot(uint64_t index, const DecodedSlot& slot) {
  std::byte* p = meta_bytes().data() + SlotOffset(index);
  std::memcpy(p, &slot.key_hash, 8);
  std::memcpy(p + 8, &slot.extent_offset, 4);
  std::memcpy(p + 12, &slot.key_size, 2);
  std::memcpy(p + 14, &slot.value_size, 2);
  std::memcpy(p + 16, &slot.crc, 8);
}

bool CuckooTable::KeyMatchesExtent(const DecodedSlot& slot, std::span<const std::byte> key) const {
  if (slot.key_size != key.size()) {
    return false;
  }
  return std::memcmp(extent_bytes().data() + slot.extent_offset, key.data(), key.size()) == 0;
}

int64_t CuckooTable::FindSlot(uint64_t key_hash, std::span<const std::byte> key) const {
  uint64_t positions[kWays];
  Positions(key_hash, num_slots_, positions);
  for (uint64_t pos : positions) {
    const DecodedSlot slot = LoadSlot(pos);
    if (!slot.empty() && slot.key_hash == key_hash && KeyMatchesExtent(slot, key)) {
      return static_cast<int64_t>(pos);
    }
  }
  return -1;
}

int64_t CuckooTable::MakeRoom(uint64_t key_hash) {
  uint64_t positions[kWays];
  Positions(key_hash, num_slots_, positions);
  // Immediate-eviction random walk: pull one resident out of a candidate
  // slot (freeing it for the caller) and carry it "in hand" until an empty
  // alternate turns up, displacing other residents along the way. Holding
  // the homeless entry in hand makes the walk cycle-safe, and during the
  // walk the entry is transiently invisible to remote readers — the same
  // window real Pilaf closes with GET retries.
  const uint64_t freed = positions[rng_.NextBounded(kWays)];
  DecodedSlot homeless = LoadSlot(freed);
  StoreSlot(freed, DecodedSlot{});
  for (int depth = 0; depth < kMaxKickDepth; ++depth) {
    uint64_t alts[kWays];
    Positions(homeless.key_hash, num_slots_, alts);
    for (uint64_t alt : alts) {
      if (alt != freed && LoadSlot(alt).empty()) {
        StoreSlot(alt, homeless);
        ++stats_.kicks;
        return static_cast<int64_t>(freed);
      }
    }
    uint64_t target = UINT64_MAX;
    for (int tries = 0; tries < 16 && target == UINT64_MAX; ++tries) {
      const uint64_t candidate = alts[rng_.NextBounded(kWays)];
      if (candidate != freed) {
        target = candidate;
      }
    }
    if (target == UINT64_MAX) {
      break;  // degenerate hash positions
    }
    const DecodedSlot displaced = LoadSlot(target);
    StoreSlot(target, homeless);
    homeless = displaced;
    ++stats_.kicks;
  }
  // Walk exhausted: put the final homeless entry back into the reserved
  // slot so nothing is lost, and report the table as effectively full.
  StoreSlot(freed, homeless);
  return -1;
}

std::optional<CuckooTable::PendingPut> CuckooTable::StageExtent(std::span<const std::byte> key,
                                                                std::span<const std::byte> value) {
  const uint64_t key_hash = NormalizeHash(HashBytes(key));
  const size_t need = key.size() + value.size();
  if (key.size() > UINT16_MAX || value.size() > UINT16_MAX) {
    throw std::invalid_argument("cuckoo: key/value too large for slot encoding");
  }

  int64_t slot_index = FindSlot(key_hash, key);
  uint32_t offset = 0;
  if (slot_index >= 0) {
    // Update path: reuse the record when the new bytes fit its capacity.
    const DecodedSlot old = LoadSlot(static_cast<uint64_t>(slot_index));
    const uint32_t capacity = record_capacity_.at(old.extent_offset);
    if (need <= capacity) {
      offset = old.extent_offset;
    } else {
      const size_t aligned = (need + 7) & ~size_t{7};
      if (extent_used_ + aligned > extent_span_.size) {
        ++stats_.failed_inserts;
        return std::nullopt;
      }
      offset = static_cast<uint32_t>(extent_used_);
      extent_used_ += aligned;
      record_capacity_[offset] = static_cast<uint32_t>(aligned);
    }
    ++stats_.updates;
  } else {
    // Insert path: find or make a free candidate slot. The free way is
    // chosen uniformly (not first-fit) so residents spread evenly across
    // their three candidate positions — lookups then probe ~2 slots on
    // average, matching Pilaf's measured access pattern.
    uint64_t positions[kWays];
    Positions(key_hash, num_slots_, positions);
    slot_index = -1;
    int free_ways = 0;
    for (uint64_t pos : positions) {
      if (LoadSlot(pos).empty()) {
        ++free_ways;
        if (rng_.NextBounded(static_cast<uint64_t>(free_ways)) == 0) {
          slot_index = static_cast<int64_t>(pos);  // reservoir pick
        }
      }
    }
    if (slot_index < 0) {
      slot_index = MakeRoom(key_hash);
    }
    if (slot_index < 0) {
      ++stats_.failed_inserts;
      return std::nullopt;
    }
    const size_t aligned = (need + 7) & ~size_t{7};
    if (extent_used_ + aligned > extent_span_.size) {
      ++stats_.failed_inserts;
      return std::nullopt;
    }
    offset = static_cast<uint32_t>(extent_used_);
    extent_used_ += aligned;
    record_capacity_[offset] = static_cast<uint32_t>(aligned);
    ++size_;
    ++stats_.inserts;
  }

  // Write the record bytes NOW: from this instant until PublishSlot the
  // entry is torn (new bytes, old slot/CRC) and remote readers must detect
  // it via the checksum.
  rdma::CopyBytes(extent_bytes().subspan(offset, key.size()), key);
  rdma::CopyBytes(extent_bytes().subspan(offset + key.size(), value.size()), value);

  PendingPut pending;
  pending.slot_index = static_cast<uint64_t>(slot_index);
  pending.slot.key_hash = key_hash;
  pending.slot.extent_offset = offset;
  pending.slot.key_size = static_cast<uint16_t>(key.size());
  pending.slot.value_size = static_cast<uint16_t>(value.size());
  pending.slot.crc = Crc64(extent_bytes().subspan(offset, need));
  return pending;
}

void CuckooTable::PublishSlot(const PendingPut& pending) {
  StoreSlot(pending.slot_index, pending.slot);
}

bool CuckooTable::Put(std::span<const std::byte> key, std::span<const std::byte> value) {
  std::optional<PendingPut> pending = StageExtent(key, value);
  if (!pending.has_value()) {
    return false;
  }
  PublishSlot(*pending);
  return true;
}

std::optional<std::vector<std::byte>> CuckooTable::Get(std::span<const std::byte> key) const {
  const uint64_t key_hash = NormalizeHash(HashBytes(key));
  const int64_t idx = FindSlot(key_hash, key);
  if (idx < 0) {
    return std::nullopt;
  }
  const DecodedSlot slot = LoadSlot(static_cast<uint64_t>(idx));
  std::vector<std::byte> value(slot.value_size);
  rdma::CopyBytes(value, extent_bytes().subspan(slot.extent_offset + slot.key_size,
                                                slot.value_size));
  return value;
}

bool CuckooTable::Erase(std::span<const std::byte> key) {
  const uint64_t key_hash = NormalizeHash(HashBytes(key));
  const int64_t idx = FindSlot(key_hash, key);
  if (idx < 0) {
    return false;
  }
  StoreSlot(static_cast<uint64_t>(idx), DecodedSlot{});
  --size_;
  ++stats_.erases;
  // The extent record is leaked until overwritten — log compaction is out
  // of scope, as in Pilaf.
  return true;
}

}  // namespace kv
