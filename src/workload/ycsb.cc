#include "src/workload/ycsb.h"

#include <cstring>
#include <stdexcept>

namespace workload {

Generator::Generator(const WorkloadSpec& spec, uint64_t stream_id)
    : spec_(spec), rng_(sim::Mix64(spec.seed) ^ sim::Mix64(stream_id + 0x9e37)) {
  if (spec_.num_keys == 0) {
    throw std::invalid_argument("workload: num_keys must be positive");
  }
  if (spec_.get_fraction < 0.0 || spec_.get_fraction > 1.0) {
    throw std::invalid_argument("workload: get_fraction must be in [0,1]");
  }
  if (spec_.distribution == KeyDistribution::kZipfian) {
    zipf_.emplace(spec_.num_keys, spec_.zipf_theta);
  }
}

Op Generator::Next() {
  Op op;
  op.type = rng_.NextBernoulli(spec_.get_fraction) ? OpType::kGet : OpType::kPut;
  op.key_id = zipf_ ? zipf_->Next(rng_) : rng_.NextBounded(spec_.num_keys);
  switch (spec_.value_size.kind) {
    case ValueSizeSpec::Kind::kFixed:
      op.value_size = spec_.value_size.fixed;
      break;
    case ValueSizeSpec::Kind::kUniformRange:
      op.value_size = static_cast<uint32_t>(
          rng_.NextInRange(spec_.value_size.lo, spec_.value_size.hi));
      break;
    case ValueSizeSpec::Kind::kLogUniform: {
      int steps = 0;
      for (uint32_t s = spec_.value_size.lo; s < spec_.value_size.hi; s <<= 1) {
        ++steps;
      }
      op.value_size = spec_.value_size.lo
                      << rng_.NextBounded(static_cast<uint64_t>(steps) + 1);
      break;
    }
  }
  return op;
}

void MakeKey(uint64_t key_id, std::span<std::byte> out) {
  // First 8 bytes: the id (distinctness); rest: avalanche bits.
  uint64_t words[2] = {key_id, sim::Mix64(key_id)};
  size_t n = 0;
  while (n < out.size()) {
    const size_t chunk = std::min(out.size() - n, sizeof(words));
    std::memcpy(out.data() + n, words, chunk);
    n += chunk;
    words[1] = sim::Mix64(words[1]);
  }
}

void FillValue(uint64_t key_id, std::span<std::byte> out) {
  const uint64_t base = sim::Mix64(key_id ^ 0x56414c55u);  // "VALU"
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((base + i * 131) & 0xff);
  }
}

bool CheckValue(uint64_t key_id, std::span<const std::byte> bytes) {
  const uint64_t base = sim::Mix64(key_id ^ 0x56414c55u);
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] != static_cast<std::byte>((base + i * 131) & 0xff)) {
      return false;
    }
  }
  return true;
}

void FillValueVersioned(uint64_t key_id, uint64_t version, std::span<std::byte> out) {
  if (out.size() < sizeof(version)) {
    throw std::invalid_argument("workload: versioned values need >= 8 bytes");
  }
  std::memcpy(out.data(), &version, sizeof(version));
  const uint64_t base = sim::Mix64(key_id ^ sim::Mix64(version));
  for (size_t i = sizeof(version); i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((base + i * 131) & 0xff);
  }
}

bool CheckValueVersioned(uint64_t key_id, std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(uint64_t)) {
    return false;
  }
  uint64_t version = 0;
  std::memcpy(&version, bytes.data(), sizeof(version));
  const uint64_t base = sim::Mix64(key_id ^ sim::Mix64(version));
  for (size_t i = sizeof(version); i < bytes.size(); ++i) {
    if (bytes[i] != static_cast<std::byte>((base + i * 131) & 0xff)) {
      return false;
    }
  }
  return true;
}

}  // namespace workload
