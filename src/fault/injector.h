// Executes a FaultPlan against a live fabric.
//
// The injector schedules every event of an armed plan on the sim clock and
// applies it through the substrate's fault hooks:
//
//   kNicStall      Nic::StallOutbound / StallInbound (station occupied)
//   kNicDegrade    Nic::Set{Outbound,Inbound}Degrade, restored after window
//   kLinkBurst     Fabric::SetLinkFault / ClearLinkFault on the node pair
//   kServerCrash   RpcServer::CrashThread / RestartThread (needs BindServer)
//   kQpError       Fabric::FailRcQps on the node pair
//   kCorruptRegion XOR of a byte range in the rkey's registered region
//
// Every injected fault emits a trace span/instant (category "fault") and a
// `fault.injected{kind}` counter, so injected causes line up with the
// channels' detected/recovered events in the same dump.

#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <unordered_map>

#include "src/fault/plan.h"
#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/task.h"

namespace fault {

class FaultInjector {
 public:
  explicit FaultInjector(rdma::Fabric& fabric);

  // Flushes `fault.injected` counters into the default metrics registry.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Associates `server` with the node it runs on, making that node a valid
  // target for kServerCrash events. Must happen before Arm().
  void BindServer(uint32_t node_id, rfp::RpcServer* server);

  // Validates `plan` against the fabric topology and schedules every event.
  // May be called multiple times (schedules accumulate). Events in the past
  // fire immediately when the engine next runs.
  void Arm(const FaultPlan& plan);

  uint64_t injected() const { return injected_; }
  uint64_t injected(FaultKind kind) const {
    return by_kind_[static_cast<size_t>(kind)];
  }

 private:
  void Fire(const FaultEvent& event);
  void Corrupt(const FaultEvent& event);
  // Emits the fault's trace mark: a span over [at, at+duration] for windowed
  // kinds, an instant otherwise.
  void Trace(const FaultEvent& event);

  rdma::Fabric& fabric_;
  sim::Engine& engine_;
  std::unordered_map<uint32_t, rfp::RpcServer*> servers_;
  uint64_t injected_ = 0;
  std::array<uint64_t, kFaultKindCount> by_kind_{};
};

}  // namespace fault

#endif  // SRC_FAULT_INJECTOR_H_
