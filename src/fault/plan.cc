#include "src/fault/plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/sim/random.h"

namespace fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNicStall:
      return "nic_stall";
    case FaultKind::kNicDegrade:
      return "nic_degrade";
    case FaultKind::kLinkBurst:
      return "link_burst";
    case FaultKind::kServerCrash:
      return "server_crash";
    case FaultKind::kQpError:
      return "qp_error";
    case FaultKind::kCorruptRegion:
      return "corrupt_region";
  }
  return "unknown";
}

namespace {

void Reject(const FaultEvent& event, const char* what) {
  throw std::invalid_argument(std::string("fault plan: ") + FaultKindName(event.kind) + ": " +
                              what);
}

}  // namespace

void FaultPlan::Validate() const {
  for (const FaultEvent& event : events) {
    if (event.at < 0) {
      Reject(event, "fire time must be >= 0");
    }
    if (event.duration < 0) {
      Reject(event, "duration must be >= 0");
    }
    switch (event.kind) {
      case FaultKind::kNicStall:
        if (event.duration == 0) Reject(event, "stall window must be > 0");
        break;
      case FaultKind::kNicDegrade:
        if (event.duration == 0) Reject(event, "degrade window must be > 0");
        if (!(event.severity >= 1.0)) Reject(event, "degrade factor must be >= 1");
        break;
      case FaultKind::kLinkBurst:
        if (event.duration == 0) Reject(event, "burst window must be > 0");
        if (!(event.severity >= 0.0 && event.severity <= 1.0)) {
          Reject(event, "loss probability must be in [0, 1]");
        }
        if (event.extra_delay_ns < 0) Reject(event, "extra delay must be >= 0");
        if (event.rc_retransmit_ns < 0) Reject(event, "rc retransmit must be >= 0");
        if (event.node == event.peer) Reject(event, "link needs two distinct nodes");
        break;
      case FaultKind::kServerCrash:
        if (event.duration == 0) Reject(event, "crash window must be > 0");
        if (event.thread < kAllThreads) {
          Reject(event, "thread index must be >= 0 (or kAllThreads)");
        }
        break;
      case FaultKind::kQpError:
        if (event.node == event.peer) Reject(event, "qp error needs two distinct nodes");
        break;
      case FaultKind::kCorruptRegion:
        if (event.length == 0) Reject(event, "corruption length must be > 0");
        break;
    }
  }
}

sim::Time FaultPlan::Horizon() const {
  sim::Time horizon = 0;
  for (const FaultEvent& event : events) {
    horizon = std::max(horizon, event.at + event.duration);
  }
  return horizon;
}

FaultPlan& FaultPlan::NicStall(sim::Time at, uint32_t node, bool inbound, sim::Time window) {
  FaultEvent event;
  event.kind = FaultKind::kNicStall;
  event.at = at;
  event.duration = window;
  event.node = node;
  event.inbound = inbound;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::NicDegrade(sim::Time at, uint32_t node, bool inbound, double factor,
                                 sim::Time window) {
  FaultEvent event;
  event.kind = FaultKind::kNicDegrade;
  event.at = at;
  event.duration = window;
  event.node = node;
  event.inbound = inbound;
  event.severity = factor;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::LinkBurst(sim::Time at, uint32_t a, uint32_t b, double loss_prob,
                                sim::Time extra_delay_ns, sim::Time window,
                                sim::Time rc_retransmit_ns) {
  FaultEvent event;
  event.kind = FaultKind::kLinkBurst;
  event.at = at;
  event.duration = window;
  event.node = a;
  event.peer = b;
  event.severity = loss_prob;
  event.extra_delay_ns = extra_delay_ns;
  event.rc_retransmit_ns = rc_retransmit_ns;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::ServerCrash(sim::Time at, uint32_t node, int thread, sim::Time window) {
  FaultEvent event;
  event.kind = FaultKind::kServerCrash;
  event.at = at;
  event.duration = window;
  event.node = node;
  event.thread = thread;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::ServerCrashAll(sim::Time at, uint32_t node, sim::Time window) {
  return ServerCrash(at, node, kAllThreads, window);
}

FaultPlan& FaultPlan::QpError(sim::Time at, uint32_t a, uint32_t b) {
  FaultEvent event;
  event.kind = FaultKind::kQpError;
  event.at = at;
  event.node = a;
  event.peer = b;
  events.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::CorruptRegion(sim::Time at, uint32_t rkey, size_t offset, size_t length,
                                    uint64_t seed) {
  FaultEvent event;
  event.kind = FaultKind::kCorruptRegion;
  event.at = at;
  event.rkey = rkey;
  event.offset = offset;
  event.length = length;
  event.seed = seed;
  events.push_back(event);
  return *this;
}

FaultPlan RandomPlan(uint64_t seed, const RandomPlanOptions& options) {
  if (options.events < 0) {
    throw std::invalid_argument("fault plan: event count must be >= 0");
  }
  if (options.horizon <= options.start) {
    throw std::invalid_argument("fault plan: horizon must exceed start");
  }
  if (options.max_window < options.min_window || options.min_window <= 0) {
    throw std::invalid_argument("fault plan: bad window bounds");
  }
  if (options.nodes < 2) {
    throw std::invalid_argument("fault plan: need at least two nodes");
  }

  std::vector<FaultKind> kinds;
  if (options.enable_nic_stall) kinds.push_back(FaultKind::kNicStall);
  if (options.enable_nic_degrade) kinds.push_back(FaultKind::kNicDegrade);
  if (options.enable_link_burst) kinds.push_back(FaultKind::kLinkBurst);
  if (options.enable_server_crash) kinds.push_back(FaultKind::kServerCrash);
  if (options.enable_qp_error) kinds.push_back(FaultKind::kQpError);
  if (kinds.empty()) {
    throw std::invalid_argument("fault plan: no fault kinds enabled");
  }

  sim::Rng rng(sim::Mix64(seed ^ 0x46504c41));  // "FPLA"
  FaultPlan plan;
  for (int i = 0; i < options.events; ++i) {
    const FaultKind kind = kinds[rng.NextBounded(kinds.size())];
    const sim::Time at =
        options.start + static_cast<sim::Time>(rng.NextBounded(
                            static_cast<uint64_t>(options.horizon - options.start)));
    const sim::Time window =
        options.min_window + static_cast<sim::Time>(rng.NextBounded(static_cast<uint64_t>(
                                 options.max_window - options.min_window + 1)));
    const uint32_t node = static_cast<uint32_t>(rng.NextBounded(options.nodes));
    uint32_t peer = static_cast<uint32_t>(rng.NextBounded(options.nodes - 1));
    if (peer >= node) {
      ++peer;  // uniform over nodes != node
    }
    switch (kind) {
      case FaultKind::kNicStall:
        plan.NicStall(at, node, rng.NextBernoulli(0.5), window);
        break;
      case FaultKind::kNicDegrade:
        plan.NicDegrade(at, node, rng.NextBernoulli(0.5),
                        options.degrade_min +
                            rng.NextDouble() * (options.degrade_max - options.degrade_min),
                        window);
        break;
      case FaultKind::kLinkBurst:
        plan.LinkBurst(at, node, peer,
                       options.loss_min + rng.NextDouble() * (options.loss_max - options.loss_min),
                       static_cast<sim::Time>(
                           rng.NextBounded(static_cast<uint64_t>(options.max_extra_delay_ns) + 1)),
                       window);
        break;
      case FaultKind::kServerCrash:
        plan.ServerCrash(at, options.server_node,
                         static_cast<int>(rng.NextBounded(
                             static_cast<uint64_t>(std::max(options.server_threads, 1)))),
                         window);
        break;
      case FaultKind::kQpError:
        plan.QpError(at, node, peer);
        break;
      case FaultKind::kCorruptRegion:
        break;  // never drawn: not in `kinds`
    }
  }
  // Stable order: sort by fire time so Arm() schedules chronologically and
  // plans with equal seeds are structurally identical regardless of draw
  // order details.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  plan.Validate();
  return plan;
}

}  // namespace fault
