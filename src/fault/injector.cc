#include "src/fault/injector.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"
#include "src/rdma/memory.h"
#include "src/rdma/nic.h"
#include "src/rdma/node.h"
#include "src/sim/random.h"

namespace fault {

FaultInjector::FaultInjector(rdma::Fabric& fabric)
    : fabric_(fabric), engine_(fabric.engine()) {
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->NameTrack(reinterpret_cast<uint64_t>(this), "fault injector");
  }
}

FaultInjector::~FaultInjector() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  for (int k = 0; k < kFaultKindCount; ++k) {
    if (by_kind_[static_cast<size_t>(k)] > 0) {
      reg.GetCounter("fault.injected", {{"kind", FaultKindName(static_cast<FaultKind>(k))}})
          ->Add(by_kind_[static_cast<size_t>(k)]);
    }
  }
}

void FaultInjector::BindServer(uint32_t node_id, rfp::RpcServer* server) {
  servers_[node_id] = server;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  plan.Validate();
  const uint32_t nodes = static_cast<uint32_t>(fabric_.node_count());
  for (const FaultEvent& event : plan.events) {
    if (event.node >= nodes ||
        ((event.kind == FaultKind::kLinkBurst || event.kind == FaultKind::kQpError) &&
         event.peer >= nodes)) {
      throw std::invalid_argument(std::string("fault injector: ") + FaultKindName(event.kind) +
                                  " targets a node outside the fabric");
    }
    if (event.kind == FaultKind::kServerCrash) {
      auto it = servers_.find(event.node);
      if (it == servers_.end()) {
        throw std::invalid_argument("fault injector: server_crash targets node " +
                                    std::to_string(event.node) + " with no bound RpcServer");
      }
      if (event.thread != kAllThreads && event.thread >= it->second->num_threads()) {
        throw std::invalid_argument("fault injector: server_crash thread out of range");
      }
    }
    engine_.ScheduleAt(event.at, [this, event] { Fire(event); });
  }
}

void FaultInjector::Trace(const FaultEvent& event) {
  sim::TraceSink* trace = engine_.trace_sink();
  if (trace == nullptr) {
    return;
  }
  const uint64_t track = reinterpret_cast<uint64_t>(this);
  if (event.duration > 0) {
    trace->Span("fault", FaultKindName(event.kind), track, event.at, event.at + event.duration);
  } else {
    trace->Instant("fault", FaultKindName(event.kind), track, event.at);
  }
}

void FaultInjector::Fire(const FaultEvent& event) {
  ++injected_;
  ++by_kind_[static_cast<size_t>(event.kind)];
  Trace(event);
  switch (event.kind) {
    case FaultKind::kNicStall: {
      rdma::Nic& nic = fabric_.node(event.node).nic();
      engine_.Spawn(event.inbound ? nic.StallInbound(event.duration)
                                  : nic.StallOutbound(event.duration));
      break;
    }
    case FaultKind::kNicDegrade: {
      rdma::Nic& nic = fabric_.node(event.node).nic();
      if (event.inbound) {
        nic.SetInboundDegrade(event.severity);
      } else {
        nic.SetOutboundDegrade(event.severity);
      }
      // Windows on the same (node, station) must not overlap: restore is
      // unconditional, not a pop of a nesting stack.
      engine_.ScheduleAfter(event.duration, [this, event] {
        rdma::Nic& target = fabric_.node(event.node).nic();
        if (event.inbound) {
          target.SetInboundDegrade(1.0);
        } else {
          target.SetOutboundDegrade(1.0);
        }
      });
      break;
    }
    case FaultKind::kLinkBurst: {
      rdma::LinkFault link;
      link.loss_prob = event.severity;
      link.extra_delay_ns = event.extra_delay_ns;
      link.rc_retransmit_ns = event.rc_retransmit_ns;
      fabric_.SetLinkFault(event.node, event.peer, link);
      engine_.ScheduleAfter(event.duration,
                            [this, event] { fabric_.ClearLinkFault(event.node, event.peer); });
      break;
    }
    case FaultKind::kServerCrash: {
      rfp::RpcServer* server = servers_.at(event.node);
      if (event.thread == kAllThreads) {
        // Whole-node crash: every worker goes dark at once, so the outage
        // cannot be masked by work stealing — surviving failover machinery
        // (a lease-probing coordinator, docs/replication.md) must notice.
        for (int t = 0; t < server->num_threads(); ++t) {
          server->CrashThread(t);
        }
        engine_.ScheduleAfter(event.duration, [server] {
          for (int t = 0; t < server->num_threads(); ++t) {
            server->RestartThread(t);
          }
        });
        break;
      }
      server->CrashThread(event.thread);
      engine_.ScheduleAfter(event.duration,
                            [server, event] { server->RestartThread(event.thread); });
      break;
    }
    case FaultKind::kQpError:
      fabric_.FailRcQps(event.node, event.peer);
      break;
    case FaultKind::kCorruptRegion:
      Corrupt(event);
      break;
  }
}

void FaultInjector::Corrupt(const FaultEvent& event) {
  rdma::MemoryRegion* mr = fabric_.FindRemote(rdma::RemoteKey{event.rkey});
  if (mr == nullptr) {
    throw std::invalid_argument("fault injector: corrupt_region rkey " +
                                std::to_string(event.rkey) + " is not registered");
  }
  if (event.offset >= mr->size()) {
    return;  // window entirely past the region: nothing to flip
  }
  const size_t len = std::min(event.length, mr->size() - event.offset);
  std::span<std::byte> bytes = mr->bytes().subspan(event.offset, len);
  sim::Rng rng(sim::Mix64(event.seed ^ 0x434f5252));  // "CORR"
  for (std::byte& b : bytes) {
    // XOR with a nonzero byte guarantees every targeted byte really changes.
    b ^= static_cast<std::byte>(1 + rng.NextBounded(255));
  }
}

}  // namespace fault
