// Deterministic fault schedules.
//
// A FaultPlan is a list of FaultEvents pinned to virtual timestamps. Plans
// are either scripted (the builder methods below) or generated from a seed
// (RandomPlan), and are executed by a FaultInjector (injector.h). Because
// every event fires at a fixed sim-clock instant and all randomness flows
// through seeded sim::Rng streams, a (seed, plan) pair reproduces the exact
// same run — faults, detections, and recoveries included. That determinism
// guarantee is what tests/fault/ asserts and docs/fault_injection.md
// documents.

#ifndef SRC_FAULT_PLAN_H_
#define SRC_FAULT_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace fault {

// The five fault classes of the subsystem (ISSUE 2 / docs/fault_injection.md).
enum class FaultKind : uint8_t {
  kNicStall,       // occupy one NIC station for the window (head-of-line block)
  kNicDegrade,     // multiply one NIC station's service time for the window
  kLinkBurst,      // loss / extra-delay burst on one node pair for the window
  kServerCrash,    // crash one bound RpcServer worker thread for the window
  kQpError,        // transition every RC QP on one node pair to the error state
  kCorruptRegion,  // XOR a byte range of a registered region (instantaneous)
};

constexpr int kFaultKindCount = 6;

// FaultEvent::thread sentinel: a kServerCrash that takes down every worker
// of the bound server at once (node crash, not a lost core).
constexpr int kAllThreads = -1;

const char* FaultKindName(FaultKind kind);

// One scheduled fault. Which fields matter depends on `kind`; the builder
// methods on FaultPlan populate exactly the relevant ones.
struct FaultEvent {
  FaultKind kind = FaultKind::kNicStall;
  sim::Time at = 0;        // virtual time the fault fires
  sim::Time duration = 0;  // window length (ignored by kCorruptRegion, kQpError)

  uint32_t node = 0;   // primary node id (NIC faults, crash, one end of a pair)
  uint32_t peer = 0;   // second node id (kLinkBurst, kQpError)
  bool inbound = false;  // NIC station selector: in-bound engine vs issue pipeline

  double severity = 0.0;         // degrade factor (>= 1) or loss probability [0, 1]
  sim::Time extra_delay_ns = 0;  // kLinkBurst: added per traversal
  sim::Time rc_retransmit_ns = 0;  // kLinkBurst: RC per-loss retry penalty

  int thread = 0;  // kServerCrash: worker index on the bound server, or
                   // kAllThreads (-1) for a whole-node crash — every worker
                   // goes dark at once, so work stealing cannot mask the
                   // outage (the failover path, docs/replication.md)

  uint32_t rkey = 0;   // kCorruptRegion: target region
  size_t offset = 0;   // kCorruptRegion: first byte
  size_t length = 0;   // kCorruptRegion: bytes to flip
  uint64_t seed = 1;   // kCorruptRegion: corruption byte stream
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  // Throws std::invalid_argument on out-of-range fields (negative times,
  // degrade factor < 1, loss probability outside [0, 1], ...).
  void Validate() const;

  // Latest instant any event is still active (max over at + duration).
  sim::Time Horizon() const;

  bool empty() const { return events.empty(); }
  size_t size() const { return events.size(); }

  // ---- Builders (each appends one event and returns *this for chaining) ---

  FaultPlan& NicStall(sim::Time at, uint32_t node, bool inbound, sim::Time window);
  FaultPlan& NicDegrade(sim::Time at, uint32_t node, bool inbound, double factor,
                        sim::Time window);
  FaultPlan& LinkBurst(sim::Time at, uint32_t a, uint32_t b, double loss_prob,
                       sim::Time extra_delay_ns, sim::Time window,
                       sim::Time rc_retransmit_ns = 4000);
  FaultPlan& ServerCrash(sim::Time at, uint32_t node, int thread, sim::Time window);
  // Whole-node crash: every worker thread of the bound server goes dark for
  // the window (FaultEvent::thread = kAllThreads). Unlike a single-thread
  // crash, work stealing cannot route around it — the failover trigger.
  FaultPlan& ServerCrashAll(sim::Time at, uint32_t node, sim::Time window);
  FaultPlan& QpError(sim::Time at, uint32_t a, uint32_t b);
  FaultPlan& CorruptRegion(sim::Time at, uint32_t rkey, size_t offset, size_t length,
                           uint64_t seed);
};

// Knobs for RandomPlan. The generator draws `events` faults uniformly over
// [start, horizon), choosing kinds from the enabled set and targets from the
// given topology. Corruption is opt-in because it needs concrete rkeys.
struct RandomPlanOptions {
  int events = 8;
  sim::Time start = 0;
  sim::Time horizon = sim::Millis(10);
  sim::Time min_window = sim::Micros(50);
  sim::Time max_window = sim::Micros(500);

  uint32_t nodes = 2;         // node ids drawn from [0, nodes)
  uint32_t server_node = 0;   // target of crash faults
  int server_threads = 1;     // thread ids drawn from [0, server_threads)

  bool enable_nic_stall = true;
  bool enable_nic_degrade = true;
  bool enable_link_burst = true;
  bool enable_server_crash = true;
  bool enable_qp_error = true;

  double degrade_min = 2.0;
  double degrade_max = 10.0;
  double loss_min = 0.05;
  double loss_max = 0.5;
  sim::Time max_extra_delay_ns = sim::Micros(5);
};

// Deterministic: equal (seed, options) produce identical plans.
FaultPlan RandomPlan(uint64_t seed, const RandomPlanOptions& options = {});

}  // namespace fault

#endif  // SRC_FAULT_PLAN_H_
