#include "src/mem/pool.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/obs/metrics.h"

namespace mem {

namespace {

int Log2(size_t v) { return static_cast<int>(std::bit_width(v)) - 1; }

}  // namespace

PoolOptions PoolOptionsFrom(const rdma::NicConfig& config) {
  PoolOptions options;
  options.block_bytes = config.mem_block_bytes;
  options.pool_level = config.mem_pool_level;
  options.slab_classes = config.mem_slab_classes;
  options.slab_magazine = config.mem_slab_magazine;
  options.max_registered_bytes = config.mem_max_registered_bytes;
  return options;
}

void ValidateOptions(const PoolOptions& options) {
  auto reject = [](const char* what) {
    throw std::invalid_argument(std::string("mem::PoolOptions: ") + what);
  };
  if (!std::has_single_bit(options.block_bytes) || options.block_bytes < 64) {
    reject("block_bytes must be a power of two >= 64");
  }
  if (options.pool_level < 1 || options.pool_level > 32) {
    reject("pool_level must be in [1, 32]");
  }
  if (static_cast<size_t>(std::countl_zero(options.block_bytes)) <
      static_cast<size_t>(options.pool_level - 1)) {
    reject("block_bytes << (pool_level - 1) overflows size_t");
  }
  if (options.slab_classes < 0 ||
      (options.slab_classes > 0 && (options.block_bytes >> options.slab_classes) < 32)) {
    reject("slab_classes must keep the smallest slab class >= 32 bytes");
  }
  if (options.slab_magazine < 0) reject("slab_magazine must be >= 0");
  const size_t arena = options.block_bytes << (options.pool_level - 1);
  if (options.max_registered_bytes != 0 && options.max_registered_bytes < arena) {
    reject("max_registered_bytes smaller than one arena");
  }
}

Pool::Pool(rdma::Node& node, PoolOptions options)
    : node_(node), options_(options), node_name_(node.name()) {
  ValidateOptions(options_);
  arena_bytes_ = options_.block_bytes << (options_.pool_level - 1);
  max_order_ = options_.pool_level - 1;
  partial_slabs_.resize(static_cast<size_t>(std::max(options_.slab_classes, 0)));
}

Pool::~Pool() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"node", node_name_}};
  if (allocs_ > 0) reg.GetCounter("mem.alloc", labels)->Add(allocs_);
  if (frees_ > 0) reg.GetCounter("mem.free", labels)->Add(frees_);
  if (mr_reuses_ > 0) reg.GetCounter("mem.mr_reuse", labels)->Add(mr_reuses_);
  if (registrations_ > 0) reg.GetCounter("mem.registrations", labels)->Add(registrations_);
  reg.GetGauge("mem.registered_bytes", labels)->Set(static_cast<double>(registered_bytes_));
  reg.GetGauge("mem.in_use_bytes", labels)->Set(static_cast<double>(in_use_bytes_));
  reg.GetGauge("mem.arenas", labels)->Set(static_cast<double>(arena_count()));
  if (!arenas_.empty()) {
    sim::Histogram* occ = reg.GetHistogram("mem.arena_occupancy_pct", labels);
    sim::Histogram* frag = reg.GetHistogram("mem.arena_fragmentation_pct", labels);
    for (const ArenaStats& stats : ArenaUtilization()) {
      occ->Record(static_cast<int64_t>(stats.occupancy_pct + 0.5));
      frag->Record(static_cast<int64_t>(stats.fragmentation_pct + 0.5));
    }
  }
}

int Pool::ClassIndexFor(size_t rounded) const {
  // rounded is a power of two in [min chunk, block/2].
  return Log2(options_.block_bytes) - Log2(rounded) - 1;
}

int Pool::OrderFor(size_t rounded) const {
  // rounded is a power of two in [block, arena].
  return Log2(rounded) - Log2(options_.block_bytes);
}

void Pool::CheckRegistrationBudget(size_t bytes) const {
  if (options_.max_registered_bytes != 0 &&
      registered_bytes_ + bytes > options_.max_registered_bytes) {
    throw ExhaustedError(
        "mem::Pool exhausted on " + node_name_ + ": registering " + std::to_string(bytes) +
        " more bytes would exceed max_registered_bytes=" +
        std::to_string(options_.max_registered_bytes) + " (currently registered " +
        std::to_string(registered_bytes_) + ")");
  }
}

Span Pool::Alloc(size_t size) {
  const uint64_t registrations_before = registrations_;
  const size_t min_chunk = options_.slab_classes > 0
                               ? options_.block_bytes >> options_.slab_classes
                               : options_.block_bytes;
  Span span;
  const size_t rounded = std::bit_ceil(std::max(size, min_chunk));
  if (rounded < options_.block_bytes) {
    span = SlabAlloc(ClassIndexFor(rounded), size);
  } else if (rounded <= arena_bytes_) {
    span = BuddyAlloc(OrderFor(rounded), size);
  } else {
    span = HugeAlloc(size);
  }
  ++allocs_;
  if (registrations_ == registrations_before) {
    ++mr_reuses_;
  }
  return span;
}

void Pool::Free(const Span& span) {
  if (!span.valid()) {
    return;
  }
  ++frees_;
  auto arena_it = arena_by_mr_.find(span.mr);
  if (arena_it != arena_by_mr_.end()) {
    Arena& arena = *arenas_[arena_it->second];
    const size_t block_off = span.offset & ~(options_.block_bytes - 1);
    auto slab_it = arena.slabs.find(block_off);
    if (slab_it != arena.slabs.end()) {
      SlabFree(arena, *slab_it->second, span.offset);
      return;
    }
    auto order_it = arena.allocated_order.find(span.offset);
    if (order_it == arena.allocated_order.end()) {
      throw std::invalid_argument("mem::Pool::Free: span not allocated from this pool");
    }
    const int order = order_it->second;
    arena.allocated_order.erase(order_it);
    in_use_bytes_ -= options_.block_bytes << order;
    BuddyFree(arena, span.offset, order);
    return;
  }
  auto huge_it = huge_sizes_.find(span.mr);
  if (huge_it != huge_sizes_.end()) {
    in_use_bytes_ -= huge_it->second;
    huge_free_[huge_it->second].push_back(span.mr);
    return;
  }
  throw std::invalid_argument("mem::Pool::Free: span not owned by this pool");
}

Pool::Arena& Pool::EnsureArenaWithOrder(int order) {
  for (auto& arena : arenas_) {
    for (int o = order; o <= max_order_; ++o) {
      if (!arena->free_by_order[static_cast<size_t>(o)].empty()) {
        return *arena;
      }
    }
  }
  CheckRegistrationBudget(arena_bytes_);
  auto arena = std::make_unique<Arena>();
  arena->mr = node_.RegisterMemory(arena_bytes_, options_.access);
  arena->free_by_order.resize(static_cast<size_t>(max_order_) + 1);
  arena->free_by_order[static_cast<size_t>(max_order_)].insert(0);
  registered_bytes_ += arena_bytes_;
  ++registrations_;
  arena_by_mr_[arena->mr] = static_cast<uint32_t>(arenas_.size());
  arenas_.push_back(std::move(arena));
  return *arenas_.back();
}

Span Pool::BuddyAlloc(int order, size_t size) {
  Arena& arena = EnsureArenaWithOrder(order);
  int have = order;
  while (arena.free_by_order[static_cast<size_t>(have)].empty()) {
    ++have;
  }
  size_t offset = *arena.free_by_order[static_cast<size_t>(have)].begin();
  arena.free_by_order[static_cast<size_t>(have)].erase(offset);
  while (have > order) {
    --have;
    // Keep the lower half, release the upper buddy at the shrunk order.
    arena.free_by_order[static_cast<size_t>(have)].insert(offset +
                                                          (options_.block_bytes << have));
  }
  arena.allocated_order[offset] = order;
  in_use_bytes_ += options_.block_bytes << order;
  return Span{arena.mr, offset, size};
}

void Pool::BuddyFree(Arena& arena, size_t offset, int order) {
  size_t cur = offset;
  while (order < max_order_) {
    const size_t buddy = cur ^ (options_.block_bytes << order);
    auto& peers = arena.free_by_order[static_cast<size_t>(order)];
    auto it = peers.find(buddy);
    if (it == peers.end()) {
      break;
    }
    peers.erase(it);
    cur = std::min(cur, buddy);
    ++order;
  }
  arena.free_by_order[static_cast<size_t>(order)].insert(cur);
}

Span Pool::SlabAlloc(int class_index, size_t size) {
  auto& partials = partial_slabs_[static_cast<size_t>(class_index)];
  if (partials.empty()) {
    // Carve a fresh leaf block into chunks of this class.
    Arena& arena = EnsureArenaWithOrder(0);
    int have = 0;
    while (arena.free_by_order[static_cast<size_t>(have)].empty()) {
      ++have;
    }
    size_t offset = *arena.free_by_order[static_cast<size_t>(have)].begin();
    arena.free_by_order[static_cast<size_t>(have)].erase(offset);
    while (have > 0) {
      --have;
      arena.free_by_order[static_cast<size_t>(have)].insert(offset +
                                                            (options_.block_bytes << have));
    }
    auto slab = std::make_unique<Slab>();
    slab->class_index = class_index;
    slab->base_offset = offset;
    slab->arena_index = arena_by_mr_.at(arena.mr);
    const uint32_t chunks =
        static_cast<uint32_t>(options_.block_bytes / ChunkBytes(class_index));
    slab->free_chunks.reserve(chunks);
    // Descending so chunk 0 pops first.
    for (uint32_t i = chunks; i > 0; --i) {
      slab->free_chunks.push_back(i - 1);
    }
    partials.push_back(slab.get());
    arena.slabs[offset] = std::move(slab);
  }
  Slab* slab = partials.back();
  const uint32_t chunk = slab->free_chunks.back();
  slab->free_chunks.pop_back();
  ++slab->live;
  if (slab->free_chunks.empty()) {
    partials.pop_back();
  }
  const size_t chunk_bytes = ChunkBytes(class_index);
  in_use_bytes_ += chunk_bytes;
  Arena& arena = *arenas_[slab->arena_index];
  return Span{arena.mr, slab->base_offset + chunk * chunk_bytes, size};
}

void Pool::SlabFree(Arena& arena, Slab& slab, size_t offset) {
  const size_t chunk_bytes = ChunkBytes(slab.class_index);
  const size_t rel = offset - slab.base_offset;
  if (rel % chunk_bytes != 0 || slab.live == 0) {
    throw std::invalid_argument("mem::Pool::Free: misaligned slab chunk");
  }
  auto& partials = partial_slabs_[static_cast<size_t>(slab.class_index)];
  if (slab.free_chunks.empty()) {
    partials.push_back(&slab);  // was full, becomes partial again
  }
  slab.free_chunks.push_back(static_cast<uint32_t>(rel / chunk_bytes));
  --slab.live;
  in_use_bytes_ -= chunk_bytes;
  if (slab.live == 0 && partials.size() > static_cast<size_t>(options_.slab_magazine)) {
    // Magazine overflow: dissolve this fully-free slab back into the buddy.
    auto it = std::find(partials.begin(), partials.end(), &slab);
    if (it != partials.end()) {
      *it = partials.back();
      partials.pop_back();
    }
    const size_t block_off = slab.base_offset;
    arena.slabs.erase(block_off);  // destroys `slab`
    BuddyFree(arena, block_off, 0);
  }
}

Span Pool::HugeAlloc(size_t size) {
  const size_t reserved =
      (size + options_.block_bytes - 1) / options_.block_bytes * options_.block_bytes;
  auto it = huge_free_.find(reserved);
  rdma::MemoryRegion* mr = nullptr;
  if (it != huge_free_.end() && !it->second.empty()) {
    mr = it->second.back();
    it->second.pop_back();
  } else {
    CheckRegistrationBudget(reserved);
    mr = node_.RegisterMemory(reserved, options_.access);
    registered_bytes_ += reserved;
    ++registrations_;
    ++huge_count_;
    huge_sizes_[mr] = reserved;
  }
  in_use_bytes_ += reserved;
  return Span{mr, 0, size};
}

std::vector<Pool::ArenaStats> Pool::ArenaUtilization() const {
  std::vector<ArenaStats> stats;
  stats.reserve(arenas_.size());
  for (const auto& arena : arenas_) {
    size_t free_bytes = 0;
    size_t largest = 0;
    for (int o = 0; o <= max_order_; ++o) {
      const size_t block = options_.block_bytes << o;
      const size_t count = arena->free_by_order[static_cast<size_t>(o)].size();
      free_bytes += block * count;
      if (count > 0) {
        largest = std::max(largest, block);
      }
    }
    for (const auto& [off, slab] : arena->slabs) {
      free_bytes += slab->free_chunks.size() * ChunkBytes(slab->class_index);
    }
    ArenaStats s;
    s.occupancy_pct =
        100.0 * (1.0 - static_cast<double>(free_bytes) / static_cast<double>(arena_bytes_));
    s.fragmentation_pct =
        free_bytes == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(largest) / static_cast<double>(free_bytes));
    stats.push_back(s);
  }
  return stats;
}

std::shared_ptr<Pool> Pool::Shared(rdma::Node& node) {
  if (auto existing = std::static_pointer_cast<Pool>(node.pool_handle())) {
    return existing;
  }
  auto pool = std::make_shared<Pool>(node, PoolOptionsFrom(node.nic().config()));
  node.set_pool_handle(pool);
  return pool;
}

}  // namespace mem
