// Registered-memory allocator (docs/memory.md).
//
// A per-node buddy allocator over large registered arenas with slab
// front-ends for sub-block sizes — the chubaofs rdma buddy-pool shape
// (block size x pool level fixes the arena; per-size-class magazines give
// O(1) reuse on the fast path). Arenas are registered once and never
// deregistered while the pool lives, so channel setup/teardown, reconnects
// (Fabric::RetireQp), and store churn recycle MRs instead of re-registering:
// registration is the control-plane cost RFP-style data planes must keep off
// the hot path.
//
// Consumers: rfp::Channel slot rings, rfp::BufferPool buffers, and the KV
// stores' value slabs (which is what makes zero-copy GET possible — a reply
// header can point into a store-owned registered entry because that entry
// already lives under an rkey the client can READ).

#ifndef SRC_MEM_POOL_H_
#define SRC_MEM_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/rdma/config.h"
#include "src/rdma/memory.h"
#include "src/rdma/node.h"

namespace mem {

// Geometry of one node's pool. Defaults mirror the NicConfig mem_* knobs;
// PoolOptionsFrom translates a NicConfig so per-node pools follow the
// hardware profile they run on.
struct PoolOptions {
  // Buddy leaf block: smallest buddy unit and the slab carving unit.
  // Power of two >= 64.
  size_t block_bytes = 4096;
  // Buddy orders per arena: an arena registers
  // block_bytes << (pool_level - 1) bytes in one MR.
  int pool_level = 13;
  // Power-of-two slab classes below the leaf block (block/2 ... block >>
  // slab_classes, smallest >= 32). 0 disables the slab front-end.
  int slab_classes = 6;
  // Fully-free slabs (and huge regions per size) kept cached per class
  // before surplus frees coalesce back into the buddy.
  int slab_magazine = 64;
  // Hard cap on bytes this pool may register (0 = unbounded). Allocations
  // that would register past it throw ExhaustedError.
  size_t max_registered_bytes = 0;
  // Access flags for every arena. Remote read+write by default: response
  // rings are fetched by clients, request rings written by them, and
  // zero-copy GET entries must be remotely readable.
  uint32_t access = rdma::kAccessRemoteRead | rdma::kAccessRemoteWrite;
};

PoolOptions PoolOptionsFrom(const rdma::NicConfig& config);

// Throws std::invalid_argument on inconsistent geometry (mirrors the
// rdma::ValidateConfig checks for the mem_* knobs).
void ValidateOptions(const PoolOptions& options);

// Allocation failure that is a resource condition, not a bug: the pool's
// max_registered_bytes cap cannot accommodate the request. Callers that can
// shed (admission control) catch this; everything else fails loudly.
class ExhaustedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// One allocation: a range inside a registered region. The MR outlives the
// span (arenas live as long as the pool), so holding a Span never dangles;
// freeing it returns the range for reuse without deregistering.
struct Span {
  rdma::MemoryRegion* mr = nullptr;
  size_t offset = 0;
  size_t size = 0;  // bytes requested (the reserved extent may be larger)

  bool valid() const { return mr != nullptr; }
  uint32_t rkey() const { return mr->remote_key().rkey; }
  std::span<std::byte> bytes() const { return mr->bytes().subspan(offset, size); }
};

class Pool {
 public:
  Pool(rdma::Node& node, PoolOptions options);
  ~Pool();  // flushes obs metrics; arenas stay registered (the node owns them)

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // O(1) on the fast path: slab-magazine hit for sub-block sizes, free-set
  // hit for buddy sizes, cached region for huge sizes. Falls back to buddy
  // split / arena registration on miss. size 0 is allowed (smallest class).
  Span Alloc(size_t size);

  // O(1) fast path; buddy coalescing when a magazine overflows. Freeing an
  // invalid (default) span is a no-op; freeing a span the pool does not own
  // throws.
  void Free(const Span& span);

  // ---- Introspection (tests, bench, obs) ----------------------------------

  const PoolOptions& options() const { return options_; }
  size_t arena_bytes() const { return arena_bytes_; }
  size_t registered_bytes() const { return registered_bytes_; }
  size_t in_use_bytes() const { return in_use_bytes_; }
  size_t arena_count() const { return arenas_.size() + huge_count_; }
  uint64_t allocs() const { return allocs_; }
  uint64_t frees() const { return frees_; }
  // Allocations served entirely from already-registered memory.
  uint64_t mr_reuses() const { return mr_reuses_; }
  // MR registrations this pool performed (arenas + huge regions).
  uint64_t registrations() const { return registrations_; }

  // Per-arena utilization snapshot: occupancy = allocated fraction of the
  // arena; fragmentation = 1 - largest free extent / total free bytes
  // (0 when the free space is one extent or the arena is full).
  struct ArenaStats {
    double occupancy_pct = 0.0;
    double fragmentation_pct = 0.0;
  };
  std::vector<ArenaStats> ArenaUtilization() const;

  // The node's shared pool, created on first use with PoolOptionsFrom(the
  // node's NicConfig) and parked on the node (rdma::Node::pool_handle), so
  // channels, buffers, and stores on one node share a single allocator.
  static std::shared_ptr<Pool> Shared(rdma::Node& node);
  static Pool& Of(rdma::Node& node) { return *Shared(node); }

 private:
  struct Slab {
    int class_index = 0;
    size_t base_offset = 0;
    uint32_t arena_index = 0;
    uint32_t live = 0;
    std::vector<uint32_t> free_chunks;
  };

  struct Arena {
    rdma::MemoryRegion* mr = nullptr;
    // Free buddy blocks, by order, keyed by offset.
    std::vector<std::unordered_set<size_t>> free_by_order;
    // Outstanding buddy allocations: offset -> order.
    std::unordered_map<size_t, int> allocated_order;
    // Leaf blocks currently carved into slabs: block offset -> slab.
    std::unordered_map<size_t, std::unique_ptr<Slab>> slabs;
  };

  size_t ChunkBytes(int class_index) const { return options_.block_bytes >> (class_index + 1); }
  int ClassIndexFor(size_t rounded) const;
  int OrderFor(size_t rounded) const;

  Arena& EnsureArenaWithOrder(int order);
  Span BuddyAlloc(int order, size_t size);
  void BuddyFree(Arena& arena, size_t offset, int order);
  Span SlabAlloc(int class_index, size_t size);
  void SlabFree(Arena& arena, Slab& slab, size_t offset);
  Span HugeAlloc(size_t size);
  void CheckRegistrationBudget(size_t bytes) const;

  rdma::Node& node_;
  const PoolOptions options_;
  const std::string node_name_;  // own copy: pool may be flushed mid node teardown
  size_t arena_bytes_ = 0;
  int max_order_ = 0;

  std::vector<std::unique_ptr<Arena>> arenas_;
  std::unordered_map<const rdma::MemoryRegion*, uint32_t> arena_by_mr_;
  // Partially-filled (or cached fully-free) slabs per class.
  std::vector<std::vector<Slab*>> partial_slabs_;
  // Huge regions (> one arena) cached for reuse, keyed by reserved size.
  std::unordered_map<size_t, std::vector<rdma::MemoryRegion*>> huge_free_;
  std::unordered_map<const rdma::MemoryRegion*, size_t> huge_sizes_;
  size_t huge_count_ = 0;

  size_t registered_bytes_ = 0;
  size_t in_use_bytes_ = 0;
  uint64_t allocs_ = 0;
  uint64_t frees_ = 0;
  uint64_t mr_reuses_ = 0;
  uint64_t registrations_ = 0;
};

}  // namespace mem

#endif  // SRC_MEM_POOL_H_
