#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (depth_.empty()) {
    if (wrote_root_) {
      throw std::logic_error("obs json: more than one root value");
    }
    wrote_root_ = true;
    return;
  }
  Frame& top = depth_.back();
  if (top.is_object) {
    if (!top.key_pending) {
      throw std::logic_error("obs json: value inside object without a key");
    }
    top.key_pending = false;
    return;
  }
  if (top.has_members) {
    out_->push_back(',');
  }
  top.has_members = true;
}

void JsonWriter::Key(std::string_view key) {
  if (depth_.empty() || !depth_.back().is_object) {
    throw std::logic_error("obs json: key outside an object");
  }
  Frame& top = depth_.back();
  if (top.key_pending) {
    throw std::logic_error("obs json: two keys in a row");
  }
  if (top.has_members) {
    out_->push_back(',');
  }
  top.has_members = true;
  top.key_pending = true;
  out_->push_back('"');
  *out_ += JsonEscape(key);
  *out_ += "\":";
}

void JsonWriter::BeginObject() {
  BeforeValue();
  depth_.push_back(Frame{true, false, false});
  out_->push_back('{');
}

void JsonWriter::EndObject() {
  if (depth_.empty() || !depth_.back().is_object || depth_.back().key_pending) {
    throw std::logic_error("obs json: mismatched EndObject");
  }
  depth_.pop_back();
  out_->push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  depth_.push_back(Frame{false, false, false});
  out_->push_back('[');
}

void JsonWriter::EndArray() {
  if (depth_.empty() || depth_.back().is_object) {
    throw std::logic_error("obs json: mismatched EndArray");
  }
  depth_.pop_back();
  out_->push_back(']');
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_->push_back('"');
  *out_ += JsonEscape(value);
  out_->push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  *out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  *out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    *out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  *out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  *out_ += "null";
}

}  // namespace obs
