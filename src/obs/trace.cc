#include "src/obs/trace.h"

#include <cstdio>

#include "src/obs/json.h"

namespace obs {

namespace {

// Virtual nanoseconds -> trace microseconds.
double ToTraceTs(sim::Time t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

bool Tracer::Admit() {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  return true;
}

void Tracer::Span(std::string_view cat, std::string_view name, uint64_t track,
                  sim::Time start, sim::Time end) {
  if (!Admit()) {
    return;
  }
  events_.push_back(Event{'X', pid_, track, start, end - start, std::string(cat),
                          std::string(name)});
}

void Tracer::Instant(std::string_view cat, std::string_view name, uint64_t track,
                     sim::Time at) {
  if (!Admit()) {
    return;
  }
  events_.push_back(Event{'i', pid_, track, at, 0, std::string(cat), std::string(name)});
}

void Tracer::NameTrack(uint64_t track, std::string_view name) {
  track_names_.emplace(track, std::string(name));
}

void Tracer::BeginRun(std::string_view label) {
  ++pid_;
  run_names_.emplace_back(pid_, std::string(label));
}

std::string Tracer::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  JsonWriter w(&out);
  w.BeginObject();
  w.Field("displayTimeUnit", "ns");
  if (dropped_ > 0) {
    w.Field("droppedEventCount", dropped_);
  }
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& [pid, label] : run_names_) {
    w.BeginObject();
    w.Field("ph", "M");
    w.Field("name", "process_name");
    w.Field("pid", static_cast<int64_t>(pid));
    w.Field("tid", static_cast<uint64_t>(0));
    w.Key("args");
    w.BeginObject();
    w.Field("name", label);
    w.EndObject();
    w.EndObject();
  }
  // Thread-name metadata is emitted per pid so every run's tracks are named.
  std::vector<int> pids;
  if (run_names_.empty()) {
    pids.push_back(0);
  }
  for (const auto& [pid, label] : run_names_) {
    (void)label;
    pids.push_back(pid);
  }
  for (int pid : pids) {
    for (const auto& [track, name] : track_names_) {
      w.BeginObject();
      w.Field("ph", "M");
      w.Field("name", "thread_name");
      w.Field("pid", static_cast<int64_t>(pid));
      w.Field("tid", track);
      w.Key("args");
      w.BeginObject();
      w.Field("name", name);
      w.EndObject();
      w.EndObject();
    }
  }
  for (const Event& e : events_) {
    w.BeginObject();
    w.Field("ph", std::string_view(&e.phase, 1));
    w.Field("cat", e.cat);
    w.Field("name", e.name);
    w.Field("pid", static_cast<int64_t>(e.pid));
    w.Field("tid", e.track);
    w.Field("ts", ToTraceTs(e.start));
    if (e.phase == 'X') {
      w.Field("dur", ToTraceTs(e.duration));
    } else {
      w.Field("s", "t");  // instant scope: thread
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out;
}

bool Tracer::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace obs
