// Process-wide metrics registry.
//
// Components register named instruments with hierarchical labels
// (node / NIC / channel / rpc / store) and bump them as the simulation runs;
// instruments with the same (name, labels) pair are shared, so repeated runs
// inside one bench process aggregate naturally. The bench harness snapshots
// the registry into the --json output; see docs/observability.md for the
// exported schema.
//
// Instruments are plain accumulators — the simulator is single-threaded, so
// no atomics are needed — and pointers returned by the registry stay valid
// for the life of the process (instruments are never deleted, matching how
// NICs, channels and stores flush into them from destructors).

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/sim/stats.h"

namespace obs {

// Label dimensions, e.g. {{"node", "server"}, {"store", "jakiro"}}.
// Registries sort labels by key, so order at the call site does not matter.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every component reports into.
  static MetricsRegistry& Default();

  // Returns the instrument for (name, labels), creating it on first use.
  // The same pair always yields the same instrument; kinds are namespaced
  // separately (a counter and a histogram may share a name).
  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  sim::Histogram* GetHistogram(std::string_view name, const Labels& labels = {});

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Sample {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    uint64_t counter = 0;
    double gauge = 0.0;
    const sim::Histogram* histogram = nullptr;  // valid while registry lives
  };

  // All instruments, sorted by (name, labels) for deterministic export.
  std::vector<Sample> Snapshot() const;

  // Writes the snapshot as a JSON array of metric objects.
  void WriteJson(JsonWriter& w) const;

  // Zeroes every instrument (pointers stay valid). Test hook.
  void ResetValues();

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  template <typename T>
  static T* Lookup(std::unordered_map<std::string, Entry<T>>& map, std::string_view name,
                   const Labels& labels);

  std::unordered_map<std::string, Entry<Counter>> counters_;
  std::unordered_map<std::string, Entry<Gauge>> gauges_;
  std::unordered_map<std::string, Entry<sim::Histogram>> histograms_;
};

}  // namespace obs

#endif  // SRC_OBS_METRICS_H_
