#include "src/obs/metrics.h"

#include <algorithm>

namespace obs {

namespace {

Labels Sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Instruments are keyed by name plus the sorted label pairs, joined with
// separators that cannot appear in well-formed names/labels.
std::string MapKey(std::string_view name, const Labels& sorted_labels) {
  std::string key(name);
  for (const auto& [k, v] : sorted_labels) {
    key.push_back('\x1f');
    key += k;
    key.push_back('\x1e');
    key += v;
  }
  return key;
}

bool SampleOrder(const MetricsRegistry::Sample& a, const MetricsRegistry::Sample& b) {
  if (a.name != b.name) {
    return a.name < b.name;
  }
  return a.labels < b.labels;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

template <typename T>
T* MetricsRegistry::Lookup(std::unordered_map<std::string, Entry<T>>& map,
                           std::string_view name, const Labels& labels) {
  Labels sorted = Sorted(labels);
  std::string key = MapKey(name, sorted);
  auto it = map.find(key);
  if (it == map.end()) {
    Entry<T> entry{std::string(name), std::move(sorted), std::make_unique<T>()};
    it = map.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second.instrument.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name, const Labels& labels) {
  return Lookup(counters_, name, labels);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return Lookup(gauges_, name, labels);
}

sim::Histogram* MetricsRegistry::GetHistogram(std::string_view name, const Labels& labels) {
  return Lookup(histograms_, name, labels);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> samples;
  samples.reserve(size());
  for (const auto& [key, entry] : counters_) {
    Sample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = Kind::kCounter;
    s.counter = entry.instrument->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [key, entry] : gauges_) {
    Sample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = Kind::kGauge;
    s.gauge = entry.instrument->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [key, entry] : histograms_) {
    Sample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = Kind::kHistogram;
    s.histogram = entry.instrument.get();
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(), SampleOrder);
  return samples;
}

void MetricsRegistry::WriteJson(JsonWriter& w) const {
  w.BeginArray();
  for (const Sample& s : Snapshot()) {
    w.BeginObject();
    w.Field("name", s.name);
    w.Key("labels");
    w.BeginObject();
    for (const auto& [k, v] : s.labels) {
      w.Field(k, v);
    }
    w.EndObject();
    switch (s.kind) {
      case Kind::kCounter:
        w.Field("kind", "counter");
        w.Field("value", s.counter);
        break;
      case Kind::kGauge:
        w.Field("kind", "gauge");
        w.Field("value", s.gauge);
        break;
      case Kind::kHistogram: {
        w.Field("kind", "histogram");
        const sim::Histogram& h = *s.histogram;
        w.Field("count", h.count());
        w.Field("mean", h.mean());
        w.Field("min", h.min());
        w.Field("max", h.max());
        w.Field("p50", h.Percentile(0.50));
        w.Field("p90", h.Percentile(0.90));
        w.Field("p99", h.Percentile(0.99));
        break;
      }
    }
    w.EndObject();
  }
  w.EndArray();
}

void MetricsRegistry::ResetValues() {
  for (auto& [key, entry] : counters_) {
    *entry.instrument = Counter();
  }
  for (auto& [key, entry] : gauges_) {
    *entry.instrument = Gauge();
  }
  for (auto& [key, entry] : histograms_) {
    entry.instrument->Reset();
  }
}

}  // namespace obs
