// Minimal streaming JSON writer.
//
// Both observability exporters (the metrics snapshot and the Chrome-trace
// file) and the bench harness's --json output funnel through this writer so
// escaping, number formatting, and comma placement are correct in one place.
// The writer is strictly sequential: callers open containers, emit values,
// and close them; a Key() must precede every value inside an object.

#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  // Appends output to `*out`, which must outlive the writer.
  explicit JsonWriter(std::string* out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Emits the key for the next value. Only valid directly inside an object.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  // Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Key+value shorthands for object members.
  void Field(std::string_view key, std::string_view value) { Key(key); String(value); }
  void Field(std::string_view key, const char* value) { Key(key); String(value); }
  void Field(std::string_view key, int64_t value) { Key(key); Int(value); }
  void Field(std::string_view key, int value) { Key(key); Int(value); }
  void Field(std::string_view key, uint64_t value) { Key(key); UInt(value); }
  void Field(std::string_view key, uint32_t value) { Key(key); UInt(value); }
  void Field(std::string_view key, double value) { Key(key); Double(value); }
  void Field(std::string_view key, bool value) { Key(key); Bool(value); }

  // True once every opened container has been closed again.
  bool complete() const { return depth_.empty() && wrote_root_; }

 private:
  void BeforeValue();

  struct Frame {
    bool is_object = false;
    bool has_members = false;
    bool key_pending = false;
  };

  std::string* out_;
  std::vector<Frame> depth_;
  bool wrote_root_ = false;
};

}  // namespace obs

#endif  // SRC_OBS_JSON_H_
