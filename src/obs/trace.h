// Chrome-trace-event (Perfetto-loadable) exporter.
//
// Implements sim::TraceSink by buffering complete ("X") and instant ("i")
// events in memory and writing one JSON object with a traceEvents array on
// Finish(). Virtual nanoseconds map to trace microseconds (ts is a double,
// so sub-microsecond precision survives). Each simulated run inside a bench
// process can be grouped as its own "process" via BeginRun(), which bumps
// the pid and emits process_name metadata — successive runs then appear
// side by side in the viewer instead of overlapping on one timeline.
//
// The buffer is capped (default 2M events) so tracing a long bench cannot
// exhaust memory; overflow is counted and reported in the trace metadata.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace obs {

class Tracer : public sim::TraceSink {
 public:
  explicit Tracer(size_t max_events = 2'000'000) : max_events_(max_events) {}

  // ---- sim::TraceSink ------------------------------------------------------
  void Span(std::string_view cat, std::string_view name, uint64_t track, sim::Time start,
            sim::Time end) override;
  void Instant(std::string_view cat, std::string_view name, uint64_t track,
               sim::Time at) override;
  void NameTrack(uint64_t track, std::string_view name) override;

  // Starts a new trace "process" named `label`; subsequent events carry the
  // new pid. Called by the bench runners once per simulated run.
  void BeginRun(std::string_view label);

  // Serializes everything recorded so far as a Chrome trace JSON object.
  std::string ToJson() const;

  // Writes ToJson() to `path`. Returns false (and keeps the buffer) on I/O
  // failure.
  bool WriteFile(const std::string& path) const;

  size_t event_count() const { return events_.size(); }
  uint64_t dropped_events() const { return dropped_; }

 private:
  struct Event {
    char phase;  // 'X' or 'i'
    int pid;
    uint64_t track;
    sim::Time start;
    sim::Time duration;
    std::string cat;
    std::string name;
  };

  bool Admit();

  size_t max_events_;
  uint64_t dropped_ = 0;
  int pid_ = 0;
  std::vector<Event> events_;
  std::vector<std::pair<int, std::string>> run_names_;        // pid -> process label
  std::unordered_map<uint64_t, std::string> track_names_;     // track -> thread label
};

}  // namespace obs

#endif  // SRC_OBS_TRACE_H_
