// On-the-wire layout of RFP request and response buffers (paper Fig 7).
//
// Each channel owns one request block and one response block in the server's
// registered memory:
//
//   request block   [RequestHeader (16 B)][payload ...]     client RDMA-WRITEs
//   response block  [ResponseHeader (8 B)][payload ...]     client RDMA-READs
//
// Headers follow the paper — a status bit, a 31-bit size, and (responses
// only) a 16-bit server process time — plus a 16-bit sequence tag. The tag
// is a correctness addition documented in DESIGN.md §5: with a bare status
// bit, a remote fetch racing the server's next poll can observe the
// *previous* call's response; tagging both directions with the call sequence
// makes matching exact. The request header also carries the client's current
// paradigm mode so the server always knows how to return results, and an
// absolute deadline so the server can shed requests that already expired
// before it would run the handler (docs/overload.md).
//
// Responses additionally reserve bit 30 of size_status as a BUSY flag: an
// overloaded server publishes a header-only BUSY response (no payload) whose
// size bits carry a BusyReason code and whose time_us field carries a
// retry-after hint in microseconds, instead of silently queueing work.

#ifndef SRC_RFP_WIRE_H_
#define SRC_RFP_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace rfp {

// Which paradigm the client is currently using for this channel.
enum class Mode : uint8_t {
  kRemoteFetch = 0,  // client fetches results with RDMA READ (the RFP path)
  kServerReply = 1,  // server pushes results with RDMA WRITE (fallback path)
};

inline const char* ModeName(Mode mode) {
  return mode == Mode::kRemoteFetch ? "remote-fetch" : "server-reply";
}

// Why an overloaded server shed a request instead of serving it.
enum class BusyReason : uint8_t {
  kAdmission = 0,  // per-sweep admission budget exhausted while overloaded
  kDeadline = 1,   // the request's propagated deadline expired before dispatch
};

inline const char* BusyReasonName(BusyReason reason) {
  return reason == BusyReason::kAdmission ? "admission" : "deadline";
}

namespace wire {

constexpr uint32_t kStatusBit = 0x8000'0000u;
constexpr uint32_t kBusyBit = 0x4000'0000u;
// Bit 29 of a response's size_status: the staged payload is an
// [IndirectRef][prefix] descriptor instead of the result bytes; the client
// fetches the value with one more READ straight out of the store-owned
// registered entry the descriptor names (zero-copy GET, docs/memory.md).
constexpr uint32_t kIndirectBit = 0x2000'0000u;
// Bit 28 of a response's size_status: the server is not (or no longer) the
// primary for this service — a replication-aware client should re-resolve
// the leader and re-issue (docs/replication.md). The size bits carry the
// server's current epoch and time_us carries a leader node-id hint.
constexpr uint32_t kRedirectBit = 0x1000'0000u;
// Size bits exclude every flag bit so UnpackSize is exact for plain, BUSY,
// indirect, and redirect responses alike.
constexpr uint32_t kSizeMask = 0x7fff'ffffu & ~kBusyBit & ~kIndirectBit & ~kRedirectBit;

constexpr uint32_t PackSizeStatus(uint32_t size, bool status) {
  return (size & kSizeMask) | (status ? kStatusBit : 0);
}
constexpr bool UnpackStatus(uint32_t size_status) { return (size_status & kStatusBit) != 0; }
constexpr uint32_t UnpackSize(uint32_t size_status) { return size_status & kSizeMask; }

// ---- Request epoch (docs/replication.md) -----------------------------------
//
// Requests reuse bits 24-30 of size_status — reserved-zero since the seed
// (request payloads are bounded well under 16 MiB) — as a 7-bit replication
// epoch. Epoch 0 means "not replication-aware" and reproduces the legacy
// header bit-for-bit; epochs compare by equality only (the coordinator owns
// monotonicity, the wire just carries the fence). 7 bits wrap at 128
// promotions, far beyond any simulated run.
constexpr uint32_t kReqEpochShift = 24;
constexpr uint32_t kReqEpochMax = 0x7fu;
constexpr uint32_t kReqSizeMask = 0x00ff'ffffu;

constexpr uint32_t PackRequestSizeStatus(uint32_t size, bool status, uint32_t epoch) {
  return (size & kReqSizeMask) | ((epoch & kReqEpochMax) << kReqEpochShift) |
         (status ? kStatusBit : 0);
}
constexpr uint32_t UnpackRequestSize(uint32_t size_status) { return size_status & kReqSizeMask; }
constexpr uint32_t UnpackRequestEpoch(uint32_t size_status) {
  return (size_status >> kReqEpochShift) & kReqEpochMax;
}

// An indirect response is a ready response whose size bits count only the
// staged descriptor bytes (IndirectRef + prefix), not the value.
constexpr uint32_t PackIndirect(uint32_t staged_size) {
  return kStatusBit | kIndirectBit | (staged_size & kSizeMask);
}
constexpr bool UnpackIndirect(uint32_t size_status) { return (size_status & kIndirectBit) != 0; }

// A BUSY response is a ready response (status bit set) with the busy bit
// set; the remaining size bits carry the BusyReason code instead of a
// payload size, and ResponseHeader::time_us carries the retry-after hint.
constexpr uint32_t PackBusy(BusyReason reason) {
  return kStatusBit | kBusyBit | static_cast<uint32_t>(reason);
}
constexpr bool UnpackBusy(uint32_t size_status) { return (size_status & kBusyBit) != 0; }
constexpr BusyReason UnpackBusyReason(uint32_t size_status) {
  return static_cast<BusyReason>(size_status & 0xffu);
}

// A REDIRECT response is a ready, header-only response (status bit set, no
// payload) whose size bits carry the rejecting server's current epoch and
// whose time_us field carries a leader node-id hint. Published when a gated
// server receives a request whose epoch does not match its own — the old
// primary after a restart, or any replica that is not serving.
constexpr uint32_t PackRedirect(uint32_t epoch) {
  return kStatusBit | kRedirectBit | (epoch & kReqEpochMax);
}
constexpr bool UnpackRedirect(uint32_t size_status) {
  return (size_status & kRedirectBit) != 0;
}
constexpr uint32_t UnpackRedirectEpoch(uint32_t size_status) {
  return size_status & kReqEpochMax;
}

}  // namespace wire

// Largest call window a pipelined channel may be configured with (the slot
// index travels in RequestHeader::slot, a full byte, but 64 outstanding
// calls already saturate the out-bound pipeline many times over).
constexpr int kMaxWindow = 64;

// Header the client writes (together with the payload, in one RDMA WRITE)
// into the server's request block.
struct RequestHeader {
  uint32_t size_status = 0;  // bit 31: request present; bits 24-30: 7-bit
                             // replication epoch (0 = legacy, see
                             // wire::PackRequestSizeStatus); bits 0-23:
                             // payload size
  uint16_t seq = 0;          // call sequence tag
  uint8_t mode = 0;          // Mode the client is in (also rewritten mid-call
                             // by a 1-byte RDMA WRITE on a paradigm switch)
  uint8_t slot = 0;          // request/response slot index on a pipelined
                             // channel (docs/pipelining.md); always 0 when
                             // the channel window is 1 (the pre-pipelining
                             // wire format had a zeroed reserved byte here)
  uint64_t deadline_ns = 0;  // absolute virtual-time deadline; 0 = none. The
                             // simulated hosts share one clock, which stands
                             // in for the synchronized clocks a real
                             // deployment would need for propagated deadlines.
};
static_assert(sizeof(RequestHeader) == 16, "request header must stay 16 bytes");

// Offset of RequestHeader::mode within the request block, used for the
// mid-call mode-switch WRITE.
constexpr size_t kRequestModeOffset = 6;

// Offset of RequestHeader::slot within the request block.
constexpr size_t kRequestSlotOffset = 7;

// Header the server writes in front of the result payload.
struct ResponseHeader {
  uint32_t size_status = 0;  // bit 31: response ready; bit 30: BUSY shed
                             // notice; bit 29: indirect; bit 28: REDIRECT
                             // (wrong epoch / not the primary); remaining
                             // size bits: payload size (BUSY: reason;
                             // REDIRECT: server epoch)
  uint16_t time_us = 0;      // server process time, saturating microseconds
                             // (drives the client's switch-back decision);
                             // for BUSY responses: retry-after hint in us;
                             // for REDIRECT responses: leader node-id hint
  uint16_t seq = 0;          // echo of the request's sequence tag
};
static_assert(sizeof(ResponseHeader) == 8, "response header must stay 8 bytes");

// Response headers keep the paper's 8-byte layout; request headers grew to
// 16 bytes to carry the propagated deadline.
constexpr uint32_t kHeaderBytes = 8;
constexpr uint32_t kReqHeaderBytes = 16;

namespace wire {

// ---- Pooled-transport connection id (src/conn, docs/connections.md) ---------
//
// On the pooled UD path N server QPs serve M >> N logical clients, so requests
// must identify their logical connection in-band. The RequestHeader travels at
// the front of each datagram, and three of its fields are spare there: there
// is no slot ring (the slot byte), no paradigm mode (the mode byte — UD replies
// are always pushed), and pooled payloads are bounded to 64 KiB so size bits
// 16-23 never carry size. Together those 24 formerly-spare bits carry the
// per-client connection id the server demultiplexes on. Cid 0 is reserved for
// the connect handshake itself (no cid assigned yet).
constexpr uint32_t kPooledSizeMask = 0xffffu;
constexpr uint32_t kPooledCidMax = 0x00ff'ffffu;
constexpr uint32_t kPooledCidNone = 0;

inline void PackPooledRequest(RequestHeader& header, uint32_t size, uint32_t cid,
                              uint16_t seq) {
  header.size_status =
      kStatusBit | (size & kPooledSizeMask) | (((cid >> 16) & 0xffu) << 16);
  header.seq = seq;
  header.mode = static_cast<uint8_t>(cid & 0xffu);
  header.slot = static_cast<uint8_t>((cid >> 8) & 0xffu);
  header.deadline_ns = 0;
}

inline uint32_t UnpackPooledSize(const RequestHeader& header) {
  return header.size_status & kPooledSizeMask;
}

inline uint32_t UnpackPooledCid(const RequestHeader& header) {
  return static_cast<uint32_t>(header.mode) | (static_cast<uint32_t>(header.slot) << 8) |
         (((header.size_status >> 16) & 0xffu) << 16);
}

}  // namespace wire

namespace wire {

// Staged payload of an indirect (zero-copy) response: where the value lives
// in the server's registered memory, how many prefix bytes the handler wrote
// inline (staged right after this struct), and the entry's reuse epoch. The
// client copies the prefix from the staged fetch and collects the value with
// one RDMA READ of (rkey, value_offset, value_len) — the server never copies
// the value into the response ring. The response checksum trailer covers
// only the staged bytes; the entry's integrity is the store's publication
// discipline, which the race detector proves (kRaceFetchStore on the entry
// range against the READ's snapshot tick).
struct IndirectRef {
  uint32_t rkey = 0;
  uint32_t value_len = 0;
  uint64_t value_offset = 0;
  uint32_t prefix_len = 0;
  uint32_t epoch = 0;
};
static_assert(sizeof(IndirectRef) == 24, "indirect descriptor must stay 24 bytes");

}  // namespace wire

// Bytes of the optional response checksum trailer (RfpOptions::
// checksum_responses). Layout: [ResponseHeader][payload][checksum], so a
// single fetch of F >= header+payload+trailer bytes still completes a call
// in one READ.
constexpr uint32_t kChecksumBytes = 8;

namespace wire {

// FNV-1a over the payload, seeded with the call sequence tag so a stale
// (previous-call) response can never validate against the current call even
// if its bytes are intact. Not cryptographic — it models the CRC a real
// fetch-validation path would use (cf. Pilaf's CRC64 race detection).
inline uint64_t Checksum64(std::span<const std::byte> payload, uint16_t seq) {
  uint64_t h = 0xcbf29ce484222325ull ^ (0x100000001b3ull * (seq + 1));
  for (std::byte b : payload) {
    h ^= static_cast<uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace wire

// Saturating conversion of a process time in nanoseconds to the header's
// microsecond field.
constexpr uint16_t SaturateTimeUs(int64_t ns) {
  const int64_t us = ns / 1000;
  return us > 0xffff ? 0xffff : static_cast<uint16_t>(us < 0 ? 0 : us);
}

}  // namespace rfp

#endif  // SRC_RFP_WIRE_H_
