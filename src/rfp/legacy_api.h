// The paper's Table 2 interface, verbatim.
//
// RFP's porting story is that an RPC library moves from TCP/IP sockets to
// RDMA by swapping send/recv primitives. This header provides exactly the
// six functions of Table 2 as thin wrappers over Channel and BufferPool, so
// code written against the paper's API compiles against this library:
//
//   client_send(server_id, local_buf, size)  client -> server request
//   client_recv(server_id, local_buf)        remote-fetch the result
//   server_send(client_id, local_buf, size)  publish the result
//   server_recv(client_id, local_buf)        poll for a request
//   malloc_buf(size) / free_buf(local_buf)   registered buffers
//
// An Endpoint maps the paper's integer peer ids onto channels. The OO
// Channel API remains the primary interface; this one exists for legacy
// call sites and for tests that pin the paper's calling convention.

#ifndef SRC_RFP_LEGACY_API_H_
#define SRC_RFP_LEGACY_API_H_

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/rfp/buffer.h"
#include "src/rfp/channel.h"
#include "src/sim/task.h"

namespace rfp {

// Registry translating the paper's peer ids to channels. A client endpoint
// registers one channel per server id; a server endpoint one per client id.
class Endpoint {
 public:
  explicit Endpoint(rdma::Node& node) : pool_(node) {}

  // Binds `peer_id` to a channel; ids are dense small integers.
  void Bind(int peer_id, Channel* channel) {
    if (peer_id < 0) {
      throw std::invalid_argument("rfp endpoint: negative peer id");
    }
    if (static_cast<size_t>(peer_id) >= channels_.size()) {
      channels_.resize(static_cast<size_t>(peer_id) + 1, nullptr);
    }
    channels_[static_cast<size_t>(peer_id)] = channel;
  }

  Channel* channel(int peer_id) const {
    if (peer_id < 0 || static_cast<size_t>(peer_id) >= channels_.size() ||
        channels_[static_cast<size_t>(peer_id)] == nullptr) {
      throw std::out_of_range("rfp endpoint: unknown peer id");
    }
    return channels_[static_cast<size_t>(peer_id)];
  }

  BufferPool& pool() { return pool_; }

 private:
  BufferPool pool_;
  std::vector<Channel*> channels_;
};

// ---- Table 2, row by row -----------------------------------------------------

// client sends message (kept in local_buf) to server's memory through
// RDMA-write.
inline sim::Task<void> client_send(Endpoint& ep, int server_id, const BufferPool::Buffer& local_buf,
                                   size_t size) {
  return ep.channel(server_id)->ClientSend(local_buf.bytes.subspan(0, size));
}

// client remotely fetches message from server's memory into local_buf
// through RDMA-read; returns the message size.
inline sim::Task<size_t> client_recv(Endpoint& ep, int server_id, BufferPool::Buffer& local_buf) {
  return ep.channel(server_id)->ClientRecv(local_buf.bytes);
}

// server puts message for client into local_buf (and, in server-reply mode,
// pushes it to the client).
inline sim::Task<void> server_send(Endpoint& ep, int client_id, const BufferPool::Buffer& local_buf,
                                   size_t size) {
  return ep.channel(client_id)->ServerSend(local_buf.bytes.subspan(0, size));
}

// server receives message from local_buf; returns the size, or false when no
// request is pending (non-blocking, as the server busy-polls its buffers).
inline bool server_recv(Endpoint& ep, int client_id, BufferPool::Buffer& local_buf,
                        size_t* size) {
  return ep.channel(client_id)->TryServerRecv(local_buf.bytes, size);
}

// allocate local buffers that are registered in the RNIC for message
// transferring through RDMA.
inline BufferPool::Buffer malloc_buf(Endpoint& ep, size_t size) {
  return ep.pool().MallocBuf(size);
}

// free local_buf that is allocated with malloc_buf.
inline void free_buf(Endpoint& ep, BufferPool::Buffer buf) { ep.pool().FreeBuf(buf); }

}  // namespace rfp

#endif  // SRC_RFP_LEGACY_API_H_
