#include "src/rfp/channel.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"

namespace rfp {

namespace {

void CheckOk(const rdma::WorkCompletion& wc, const char* what) {
  if (!wc.ok()) {
    throw std::runtime_error(std::string("rfp channel: ") + what + " failed: " +
                             rdma::WcStatusName(wc.status));
  }
}

}  // namespace

Channel::Channel(rdma::Fabric& fabric, rdma::Node& client, rdma::Node& server,
                 const RfpOptions& options)
    : engine_(fabric.engine()), options_(options) {
  block_bytes_ = kHeaderBytes + options_.max_message_bytes;
  resp_offset_ = block_bytes_;
  auto [cqp, sqp] = fabric.ConnectRc(client, server);
  client_qp_ = cqp;
  server_qp_ = sqp;
  // Request block is remotely written; response block is remotely read.
  server_mr_ = server.RegisterMemory(2 * block_bytes_,
                                     rdma::kAccessRemoteRead | rdma::kAccessRemoteWrite);
  // Landing block is remotely written by reply pushes.
  client_mr_ = client.RegisterMemory(2 * block_bytes_, rdma::kAccessRemoteWrite);
  if (options_.force_mode == RfpOptions::ForceMode::kForceReply) {
    mode_ = Mode::kServerReply;
  }
  set_fetch_size(options_.fetch_size);
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->NameTrack(reinterpret_cast<uint64_t>(this),
                     "channel " + client.name() + "->" + server.name());
  }
}

Channel::~Channel() {
  // Close the open reply-mode span, if any, so traces show the final state.
  if (mode_ == Mode::kServerReply && adaptive()) {
    if (sim::TraceSink* trace = engine_.trace_sink()) {
      trace->Span("rfp", "server_reply_mode", reinterpret_cast<uint64_t>(this),
                  reply_mode_since_, engine_.now());
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"client", client_node()->name()},
                           {"server", server_node()->name()}};
  reg.GetCounter("rfp.channel.calls", labels)->Add(stats_.calls);
  reg.GetCounter("rfp.channel.request_writes", labels)->Add(stats_.request_writes);
  reg.GetCounter("rfp.channel.fetch_reads", labels)->Add(stats_.fetch_reads);
  reg.GetCounter("rfp.channel.failed_fetches", labels)->Add(stats_.failed_fetches);
  reg.GetCounter("rfp.channel.extra_fetches", labels)->Add(stats_.extra_fetches);
  reg.GetCounter("rfp.channel.reply_pushes", labels)->Add(stats_.reply_pushes);
  reg.GetCounter("rfp.channel.switches_to_reply", labels)->Add(stats_.switches_to_reply);
  reg.GetCounter("rfp.channel.switches_to_fetch", labels)->Add(stats_.switches_to_fetch);
  reg.GetHistogram("rfp.channel.retries_per_call", labels)->Merge(stats_.retries_per_call);
}

void Channel::set_fetch_size(uint32_t f) {
  options_.fetch_size =
      std::clamp<uint32_t>(f, kHeaderBytes, static_cast<uint32_t>(block_bytes_));
}

ResponseHeader Channel::LandingHeader() const {
  return client_mr_->Load<ResponseHeader>(resp_offset_);
}

Mode Channel::server_visible_mode() const {
  return static_cast<Mode>(server_mr_->Load<uint8_t>(kRequestModeOffset));
}

sim::Task<void> Channel::ClientSend(std::span<const std::byte> msg) {
  if (msg.size() > options_.max_message_bytes) {
    throw std::invalid_argument("rfp channel: request exceeds max_message_bytes");
  }
  const sim::Time start = engine_.now();
  if (++seq_ == 0) {
    ++seq_;  // reserve 0 for "never used"
  }
  RequestHeader header;
  header.size_status = wire::PackSizeStatus(static_cast<uint32_t>(msg.size()), true);
  header.seq = seq_;
  header.mode = static_cast<uint8_t>(mode_);
  client_mr_->Store(0, header);
  client_mr_->WriteBytes(kHeaderBytes, msg);
  rdma::WorkCompletion wc =
      co_await client_qp_->Write(*client_mr_, 0, server_mr_->remote_key(), 0,
                                 kHeaderBytes + static_cast<uint32_t>(msg.size()));
  CheckOk(wc, "request write");
  ++stats_.calls;
  ++stats_.request_writes;
  client_busy_.AddBusy(engine_.now() - start);
}

sim::Task<size_t> Channel::ClientRecv(std::span<std::byte> out) {
  const sim::Time start = engine_.now();

  if (mode_ == Mode::kServerReply) {
    co_return co_await AwaitReply(out);
  }

  // Remote-fetch path: spin on RDMA READs of F bytes.
  const uint32_t f = options_.fetch_size;
  int failed = 0;
  while (true) {
    rdma::WorkCompletion wc =
        co_await client_qp_->Read(*client_mr_, resp_offset_, server_mr_->remote_key(),
                                  resp_offset_, f);
    CheckOk(wc, "result fetch");
    ++stats_.fetch_reads;
    const ResponseHeader header = LandingHeader();
    if (wire::UnpackStatus(header.size_status) && header.seq == seq_) {
      const uint32_t size = wire::UnpackSize(header.size_status);
      if (size > out.size()) {
        throw std::length_error("rfp channel: response larger than output buffer");
      }
      if (size + kHeaderBytes > f) {
        // The inline fetch was short: one more READ collects the remainder.
        rdma::WorkCompletion wc2 = co_await client_qp_->Read(
            *client_mr_, resp_offset_ + f, server_mr_->remote_key(), resp_offset_ + f,
            size + kHeaderBytes - f);
        CheckOk(wc2, "remainder fetch");
        ++stats_.fetch_reads;
        ++stats_.extra_fetches;
      }
      client_mr_->ReadBytes(resp_offset_ + kHeaderBytes, out.subspan(0, size));
      last_server_time_us_ = header.time_us;
      stats_.retries_per_call.Record(failed);
      // ">= R" to stay consistent with the mid-call switch check, which
      // already treats a call as slow the moment it reaches R failures.
      slow_streak_ = failed >= options_.retry_threshold ? slow_streak_ + 1 : 0;
      client_busy_.AddBusy(engine_.now() - start);
      co_return size;
    }
    ++failed;
    ++stats_.failed_fetches;
    if (failed == options_.retry_threshold && adaptive() &&
        slow_streak_ + 1 >= options_.slow_calls_before_switch) {
      // This call and its predecessors were all slow: fall back.
      stats_.retries_per_call.Record(failed);
      client_busy_.AddBusy(engine_.now() - start);
      co_await SwitchToReply();
      co_return co_await AwaitReply(out);
    }
  }
}

sim::Task<void> Channel::SwitchToReply() {
  mode_ = Mode::kServerReply;
  reply_mode_since_ = engine_.now();
  slow_streak_ = 0;
  fast_streak_ = 0;
  ++stats_.switches_to_reply;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "switch_to_reply", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  // Publish the new mode to the server with a one-byte WRITE into the
  // request block's mode field.
  client_mr_->Store<uint8_t>(kRequestModeOffset, static_cast<uint8_t>(Mode::kServerReply));
  rdma::WorkCompletion wc = co_await client_qp_->Write(
      *client_mr_, kRequestModeOffset, server_mr_->remote_key(), kRequestModeOffset, 1);
  CheckOk(wc, "mode switch write");
}

sim::Task<size_t> Channel::AwaitReply(std::span<std::byte> out) {
  while (true) {
    const ResponseHeader header = LandingHeader();
    if (wire::UnpackStatus(header.size_status) && header.seq == seq_) {
      const uint32_t size = wire::UnpackSize(header.size_status);
      if (size > out.size()) {
        throw std::length_error("rfp channel: response larger than output buffer");
      }
      client_mr_->ReadBytes(resp_offset_ + kHeaderBytes, out.subspan(0, size));
      client_busy_.AddBusy(options_.reply_poll_cpu_ns);
      FinishReplyCall(header);
      co_return size;
    }
    client_busy_.AddBusy(options_.reply_poll_cpu_ns);
    co_await engine_.Sleep(options_.reply_poll_interval_ns);
  }
}

void Channel::FinishReplyCall(const ResponseHeader& header) {
  last_server_time_us_ = header.time_us;
  if (!adaptive()) {
    return;
  }
  if (header.time_us <= options_.switch_back_us) {
    if (++fast_streak_ >= options_.fast_calls_before_switch_back) {
      mode_ = Mode::kRemoteFetch;
      fast_streak_ = 0;
      slow_streak_ = 0;
      ++stats_.switches_to_fetch;
      // The next request header carries the new mode; no extra write needed.
      if (sim::TraceSink* trace = engine_.trace_sink()) {
        trace->Span("rfp", "server_reply_mode", reinterpret_cast<uint64_t>(this),
                    reply_mode_since_, engine_.now());
        trace->Instant("rfp", "switch_to_fetch", reinterpret_cast<uint64_t>(this),
                       engine_.now());
      }
    }
  } else {
    fast_streak_ = 0;
  }
}

bool Channel::TryServerRecv(std::span<std::byte> out, size_t* size) {
  const RequestHeader header = server_mr_->Load<RequestHeader>(0);
  if (!wire::UnpackStatus(header.size_status) || header.seq == last_recv_seq_) {
    return false;
  }
  const uint32_t payload = wire::UnpackSize(header.size_status);
  if (payload > out.size()) {
    throw std::length_error("rfp channel: request larger than server buffer");
  }
  server_mr_->ReadBytes(kHeaderBytes, out.subspan(0, payload));
  *size = payload;
  last_recv_seq_ = header.seq;
  recv_time_ = engine_.now();
  return true;
}

sim::Task<void> Channel::ServerSend(std::span<const std::byte> msg) {
  if (msg.size() > options_.max_message_bytes) {
    throw std::invalid_argument("rfp channel: response exceeds max_message_bytes");
  }
  ResponseHeader header;
  header.size_status = wire::PackSizeStatus(static_cast<uint32_t>(msg.size()), true);
  header.time_us = SaturateTimeUs(engine_.now() - recv_time_);
  header.seq = last_recv_seq_;
  server_mr_->Store(resp_offset_, header);
  server_mr_->WriteBytes(resp_offset_ + kHeaderBytes, msg);
  last_resp_seq_ = last_recv_seq_;
  last_resp_size_ = static_cast<uint32_t>(msg.size());
  response_pushed_ = false;
  if (server_visible_mode() == Mode::kServerReply) {
    co_await PushReply();
  }
}

sim::Task<void> Channel::PushReply() {
  rdma::WorkCompletion wc =
      co_await server_qp_->Write(*server_mr_, resp_offset_, client_mr_->remote_key(),
                                 resp_offset_, kHeaderBytes + last_resp_size_);
  CheckOk(wc, "reply push");
  response_pushed_ = true;
  ++stats_.reply_pushes;
}

sim::Task<void> Channel::MaybeResendAfterSwitch() {
  if (!response_pushed_ && last_resp_seq_ != 0 &&
      server_visible_mode() == Mode::kServerReply) {
    co_await PushReply();
  }
}

}  // namespace rfp
