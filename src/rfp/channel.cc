#include "src/rfp/channel.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/check/checker.h"
#include "src/obs/metrics.h"

namespace rfp {

namespace {

void CheckOk(const rdma::WorkCompletion& wc, const char* what) {
  if (!wc.ok()) {
    throw std::runtime_error(std::string("rfp channel: ") + what + " failed: " +
                             rdma::WcStatusName(wc.status));
  }
}

}  // namespace

Channel::Channel(rdma::Fabric& fabric, rdma::Node& client, rdma::Node& server,
                 const RfpOptions& options)
    : engine_(fabric.engine()),
      fabric_(&fabric),
      client_node_(&client),
      server_node_(&server),
      options_(options) {
  ValidateOptions(options_);
  // Both blocks are sized for the larger (request) header plus the optional
  // checksum trailer after the max-sized payload; the response block simply
  // carries a little slack. A pipelined channel repeats the layout per slot:
  // [req slot 0..W-1][resp slot 0..W-1] (W=1 is the paper's single pair).
  block_bytes_ = kReqHeaderBytes + options_.max_message_bytes + ChecksumBytes();
  const size_t window = static_cast<size_t>(options_.window);
  resp_offset_ = window * block_bytes_;
  auto [cqp, sqp] = fabric.ConnectRc(client, server);
  client_qp_ = cqp;
  server_qp_ = sqp;
  // Both rings come from the nodes' shared registered-memory pools
  // (docs/memory.md): no MR is registered per channel, so setup/teardown
  // churn and reconnects recycle registered memory. The pool arenas allow
  // remote read+write, which covers both the remotely-written request ring
  // and the remotely-read response ring.
  const size_t ring_bytes = 2 * window * block_bytes_;
  server_pool_ = mem::Pool::Shared(server);
  client_pool_ = mem::Pool::Shared(client);
  // Rings that can never fit a node's registered-memory cap fail here with
  // an actionable message instead of deep inside mem::Pool as a generic
  // ExhaustedError (the pool can still throw that when the cap is merely
  // *occupied* — that path stays recoverable).
  ValidateOptions(options_, server_pool_->options().max_registered_bytes, server.name());
  ValidateOptions(options_, client_pool_->options().max_registered_bytes, client.name());
  try {
    server_span_ = server_pool_->Alloc(ring_bytes);
    client_span_ = client_pool_->Alloc(ring_bytes);
  } catch (const mem::ExhaustedError&) {
    if (server_span_.valid()) server_pool_->Free(server_span_);
    throw;
  }
  server_ = RingView{server_span_.mr, server_span_.offset};
  client_ = RingView{client_span_.mr, client_span_.offset};
  // A recycled span may hold a predecessor's ring: stale headers could alias
  // a fresh call's (slot, seq), so both rings start zeroed, exactly like a
  // freshly registered MR.
  std::fill(server_span_.bytes().begin(), server_span_.bytes().end(), std::byte{0});
  std::fill(client_span_.bytes().begin(), client_span_.bytes().end(), std::byte{0});
  if (options_.window > 1) {
    cslots_.resize(window);
    sslots_.resize(window);
    if (check::FabricChecker* chk = fabric.checker()) {
      chk->OnChannelWindow(this, options_.window);
    }
  }
  // Per-channel deterministic jitter stream (breaker open intervals, busy
  // retry backoff): pooled channels can share an arena rkey, so the span
  // base disambiguates them.
  rng_.Seed(sim::Mix64(options_.breaker_seed ^ server_.remote_key().rkey ^
                       static_cast<uint64_t>(server_span_.offset)));
  if (options_.force_mode == RfpOptions::ForceMode::kForceReply) {
    mode_ = Mode::kServerReply;
  }
  set_fetch_size(options_.fetch_size);
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->NameTrack(reinterpret_cast<uint64_t>(this),
                     "channel " + client.name() + "->" + server.name());
  }
}

Channel::~Channel() {
  // Close the open reply-mode span, if any, so traces show the final state.
  if (mode_ == Mode::kServerReply && adaptive()) {
    if (sim::TraceSink* trace = engine_.trace_sink()) {
      trace->Span("rfp", "server_reply_mode", reinterpret_cast<uint64_t>(this),
                  reply_mode_since_, engine_.now());
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"client", client_node()->name()},
                           {"server", server_node()->name()}};
  reg.GetCounter("rfp.channel.calls", labels)->Add(stats_.calls);
  reg.GetCounter("rfp.channel.request_writes", labels)->Add(stats_.request_writes);
  reg.GetCounter("rfp.channel.fetch_reads", labels)->Add(stats_.fetch_reads);
  reg.GetCounter("rfp.channel.failed_fetches", labels)->Add(stats_.failed_fetches);
  reg.GetCounter("rfp.channel.extra_fetches", labels)->Add(stats_.extra_fetches);
  reg.GetCounter("rfp.channel.reply_pushes", labels)->Add(stats_.reply_pushes);
  reg.GetCounter("rfp.channel.switches_to_reply", labels)->Add(stats_.switches_to_reply);
  reg.GetCounter("rfp.channel.switches_to_fetch", labels)->Add(stats_.switches_to_fetch);
  reg.GetHistogram("rfp.channel.retries_per_call", labels)->Merge(stats_.retries_per_call);
  // Recovery counters register only when something actually happened, so
  // fault-free runs keep their metric catalog unchanged.
  if (stats_.reconnects > 0) {
    reg.GetCounter("rfp.channel.reconnects", labels)->Add(stats_.reconnects);
  }
  if (stats_.reissues > 0) {
    reg.GetCounter("rfp.channel.reissues", labels)->Add(stats_.reissues);
  }
  if (stats_.corrupt_fetches > 0) {
    reg.GetCounter("rfp.channel.corrupt_fetches", labels)->Add(stats_.corrupt_fetches);
  }
  if (stats_.fetch_timeouts > 0) {
    reg.GetCounter("rfp.channel.fetch_timeouts", labels)->Add(stats_.fetch_timeouts);
  }
  if (stats_.recovery_request_writes > 0) {
    reg.GetCounter("rfp.channel.recovery_request_writes", labels)
        ->Add(stats_.recovery_request_writes);
  }
  if (stats_.recovery_fetch_reads > 0) {
    reg.GetCounter("rfp.channel.recovery_fetch_reads", labels)->Add(stats_.recovery_fetch_reads);
  }
  // Overload counters likewise register only when overload protection ever
  // fired (see docs/overload.md).
  if (stats_.busy_responses > 0) {
    reg.GetCounter("rfp.channel.busy_responses", labels)->Add(stats_.busy_responses);
  }
  if (stats_.shed_admission > 0) {
    reg.GetCounter("rfp.channel.shed_admission", labels)->Add(stats_.shed_admission);
  }
  if (stats_.shed_deadline > 0) {
    reg.GetCounter("rfp.channel.shed_deadline", labels)->Add(stats_.shed_deadline);
  }
  if (stats_.breaker_opens > 0) {
    reg.GetCounter("rfp.channel.breaker_opens", labels)->Add(stats_.breaker_opens);
  }
  // Replication counters register only when a redirect ever happened.
  if (stats_.redirects > 0) {
    reg.GetCounter("rfp.channel.redirects", labels)->Add(stats_.redirects);
  }
  if (stats_.shed_redirect > 0) {
    reg.GetCounter("rfp.channel.shed_redirect", labels)->Add(stats_.shed_redirect);
  }
  // Coalesced-fetch counters register only when spanning READs happened.
  if (stats_.coalesced_fetches > 0) {
    reg.GetCounter("rfp.channel.coalesced_fetches", labels)->Add(stats_.coalesced_fetches);
    reg.GetCounter("rfp.channel.coalesced_slots", labels)->Add(stats_.coalesced_slots);
  }
  // Zero-copy counters register only when indirect responses were sent.
  if (stats_.zero_copy_sends > 0) {
    reg.GetCounter("rfp.channel.zero_copy_sends", labels)->Add(stats_.zero_copy_sends);
    reg.GetCounter("rfp.channel.zero_copy_fetches", labels)->Add(stats_.zero_copy_fetches);
    reg.GetCounter("rfp.channel.zero_copy_bytes", labels)->Add(stats_.zero_copy_bytes);
    reg.GetCounter("rfp.channel.zero_copy_fallbacks", labels)->Add(stats_.zero_copy_fallbacks);
  }
  // Pipelining counters register only when the channel ever batched, so
  // window=1 runs keep their metric catalog unchanged.
  if (stats_.doorbell_batches > 0) {
    reg.GetCounter("rfp.channel.doorbell_batches", labels)->Add(stats_.doorbell_batches);
    reg.GetCounter("rfp.channel.batched_ops", labels)->Add(stats_.batched_ops);
    reg.GetHistogram("rfp.channel.batch_occupancy", labels)->Merge(stats_.batch_occupancy);
    reg.GetHistogram("rfp.channel.submit_window", labels)->Merge(stats_.submit_window);
  }
  // Release the channel's fabric resources: the endpoints stop resolving, so
  // any straggler holding a stale pointer fails loudly (and, under checking,
  // flags qp.post_on_retired) instead of scribbling. The ring spans return
  // to their pools for reuse — no deregistration, which is the point of the
  // pool (docs/memory.md).
  fabric_->RetireQp(client_qp_);
  fabric_->RetireQp(server_qp_);
  server_pool_->Free(server_span_);
  client_pool_->Free(client_span_);
}

void Channel::Detach() {
  // Both endpoints go to the error state: in-flight completions drain
  // normally, everything after completes with kQpError, and the next client
  // op triggers EnsureConnected + idempotent re-issue — exactly the fault
  // path tests/rfp already pin, which is what makes cache eviction safe
  // under in-flight calls.
  client_qp_->SetError();
  server_qp_->SetError();
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("conn", "channel_detach", reinterpret_cast<uint64_t>(this), engine_.now());
  }
}

void Channel::set_fetch_size(uint32_t f) {
  options_.fetch_size =
      std::clamp<uint32_t>(f, kHeaderBytes, static_cast<uint32_t>(block_bytes_));
}

ResponseHeader Channel::LandingHeader() const {
  return client_.Load<ResponseHeader>(resp_offset_);
}

Mode Channel::server_visible_mode() const {
  return static_cast<Mode>(server_.Load<uint8_t>(kRequestModeOffset));
}

sim::Task<void> Channel::ClientSend(std::span<const std::byte> msg, sim::Time deadline_ns) {
  if (msg.size() > options_.max_message_bytes) {
    throw std::invalid_argument("rfp channel: request exceeds max_message_bytes");
  }
  // An open breaker delays the send (idle, not client CPU) until its open
  // interval elapses; this call then becomes the half-open probe.
  co_await MaybeAwaitBreaker();
  scalar_breaker_epoch_ = breaker_epoch_;
  const sim::Time start = engine_.now();
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnClientSend(this);
  }
  if (++seq_ == 0) {
    ++seq_;  // reserve 0 for "never used"
  }
  call_deadline_ = deadline_ns != 0 ? deadline_ns
                   : options_.call_deadline_ns > 0 ? engine_.now() + options_.call_deadline_ns
                                                   : 0;
  RequestHeader header;
  header.size_status =
      wire::PackRequestSizeStatus(static_cast<uint32_t>(msg.size()), true, request_epoch_);
  header.seq = seq_;
  header.mode = static_cast<uint8_t>(mode_);
  header.deadline_ns = static_cast<uint64_t>(call_deadline_);
  client_.Store(0, header);
  client_.WriteBytes(kReqHeaderBytes, msg);
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(client_.remote_key().rkey, client_.abs(0), kReqHeaderBytes + msg.size());
  }
  // The staging block keeps the payload until the next ClientSend, which is
  // what makes ReissueRequest possible without the caller's buffer.
  last_req_size_ = static_cast<uint32_t>(msg.size());
  co_await RcOp(/*from_client=*/true, /*is_read=*/false, 0, 0,
                kReqHeaderBytes + static_cast<uint32_t>(msg.size()), "request write");
  ++stats_.calls;
  ++stats_.request_writes;
  client_busy_.AddBusy(engine_.now() - start);
}

sim::Task<size_t> Channel::ClientRecv(std::span<std::byte> out) {
  const sim::Time start = engine_.now();
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnClientRecvStart(this);
  }

  if (mode_ == Mode::kServerReply) {
    co_return co_await AwaitReply(out);
  }

  // Remote-fetch path: spin on RDMA READs of F bytes. A window=1 SubmitCall
  // may have left a per-call fetch-size override.
  const uint32_t f =
      fetch_override_ != 0 ? EffectiveFetch(fetch_override_) : options_.fetch_size;
  fetch_override_ = 0;
  sim::Time deadline = options_.fetch_timeout_ns > 0 ? start + options_.fetch_timeout_ns : 0;
  sim::Time backoff = options_.fetch_backoff_initial_ns;
  sim::Time slept = 0;  // backoff sleeps are idle time, not client CPU
  int failed = 0;
  int corrupt = 0;
  int reissues = 0;
  int busy_streak = 0;        // consecutive BUSY(admission) sheds of this call
  uint64_t attempt_reads = 0;  // this attempt's READs, moved to the recovery
                               // bucket if a re-issue abandons the attempt
  while (true) {
    const rdma::WorkCompletion fetch_wc = co_await RcOp(
        /*from_client=*/true, /*is_read=*/true, resp_offset_, resp_offset_, f, "result fetch");
    ++stats_.fetch_reads;
    ++attempt_reads;
    const ResponseHeader header = LandingHeader();
    if (wire::UnpackStatus(header.size_status) && AcceptSeq(header.seq, seq_)) {
      if (wire::UnpackBusy(header.size_status)) {
        // The server shed this request instead of serving it. Only the
        // header is meaningful (and published).
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceFetchStore, server_.remote_key().rkey,
                        server_.abs(resp_offset_), std::min<uint32_t>(kHeaderBytes, f),
                        fetch_wc.check_tick, "busy fetch");
        }
        RecordBusyResponse(header, scalar_breaker_epoch_);
        if (wire::UnpackBusyReason(header.size_status) == BusyReason::kDeadline ||
            (call_deadline_ != 0 && engine_.now() >= call_deadline_)) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(engine_.now() - start - slept);
          throw DeadlineExceeded("rfp channel: call deadline exceeded (request shed)");
        }
        // BUSY(admission): back off per the retry-after hint, then re-issue.
        const sim::Time delay = BusyRetryDelay(header.time_us, ++busy_streak);
        co_await engine_.Sleep(delay);
        slept += delay;
        if (call_deadline_ != 0 && engine_.now() >= call_deadline_) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(engine_.now() - start - slept);
          throw DeadlineExceeded("rfp channel: call deadline exceeded while backing off");
        }
        if (++reissues > options_.max_reissue_attempts) {
          throw std::runtime_error("rfp channel: request shed after max reissues");
        }
        TransferAttemptReads(&attempt_reads);
        co_await ReissueRequest();
        if (deadline != 0) {
          deadline = engine_.now() + options_.fetch_timeout_ns;
        }
        failed = 0;
        continue;
      }
      if (wire::UnpackRedirect(header.size_status)) {
        // This server is not the primary for the epoch the request carried;
        // only the header is meaningful (and published). The caller's
        // failover layer re-resolves the leader and re-issues.
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceFetchStore, server_.remote_key().rkey,
                        server_.abs(resp_offset_), std::min<uint32_t>(kHeaderBytes, f),
                        fetch_wc.check_tick, "redirect fetch");
          chk->OnClientRecvDone(this);
        }
        ++stats_.redirects;
        client_busy_.AddBusy(engine_.now() - start - slept);
        throw Redirected(wire::UnpackRedirectEpoch(header.size_status), header.time_us);
      }
      busy_streak = 0;
      const uint32_t size = wire::UnpackSize(header.size_status);
      if (size > out.size()) {
        throw std::length_error("rfp channel: response larger than output buffer");
      }
      const uint32_t total = kHeaderBytes + size + ChecksumBytes();
      uint64_t remainder_tick = 0;
      if (total > f) {
        // The inline fetch was short: one more READ collects the remainder.
        const rdma::WorkCompletion rest_wc = co_await RcOp(
            true, true, resp_offset_ + f, resp_offset_ + f, total - f, "remainder fetch");
        remainder_tick = rest_wc.check_tick;
        ++stats_.fetch_reads;
        ++attempt_reads;
        ++stats_.extra_fetches;
      }
      if (options_.checksum_responses && !LandingChecksumOk(size)) {
        // Corrupted (or torn mid-rewrite) response: never deliver the bytes.
        // After enough corrupt observations, re-issue under a fresh seq tag
        // and fetch the re-executed result.
        ++stats_.corrupt_fetches;
        if (++corrupt >= options_.corrupt_fetches_before_reissue) {
          if (++reissues > options_.max_reissue_attempts) {
            throw std::runtime_error("rfp channel: response corrupt after max reissues");
          }
          TransferAttemptReads(&attempt_reads);
          co_await ReissueRequest();
          corrupt = 0;
        }
        continue;
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        // The fetched bytes become the call's result here: every byte must
        // have been published as of the READ snapshot that carried it.
        const uint32_t rkey = server_.remote_key().rkey;
        chk->OnAccept(check::ViolationKind::kRaceFetchStore, rkey, server_.abs(resp_offset_),
                      std::min(total, f), fetch_wc.check_tick, "result fetch");
        if (total > f) {
          chk->OnAccept(check::ViolationKind::kRaceFetchStore, rkey,
                        server_.abs(resp_offset_ + f), total - f, remainder_tick,
                        "remainder fetch");
        }
      }
      size_t delivered = size;
      if (wire::UnpackIndirect(header.size_status)) {
        // The staged bytes are an [IndirectRef][prefix] descriptor: one more
        // READ collects the value straight from the store-owned entry.
        delivered = co_await CompleteIndirect(resp_offset_, size, out, "zero-copy entry fetch");
      } else {
        client_.ReadBytes(resp_offset_ + kHeaderBytes, out.subspan(0, size));
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      last_server_time_us_ = header.time_us;
      stats_.retries_per_call.Record(failed);
      // ">= R" to stay consistent with the mid-call switch check, which
      // already treats a call as slow the moment it reaches R failures.
      // While the overload override is active, slow calls do not build a
      // switch streak: a shedding server is saturated, not slow-pathed, and
      // a stampede of switches to server-reply would only add out-bound
      // work (see RfpOptions::overload_override_calls).
      slow_streak_ = failed >= options_.retry_threshold && !OverloadSuppressesSwitch()
                         ? slow_streak_ + 1
                         : 0;
      RecordBreakerOutcome(false, scalar_breaker_epoch_);
      if (calls_since_busy_ < (1 << 30)) {
        ++calls_since_busy_;
      }
      client_busy_.AddBusy(engine_.now() - start - slept);
      co_return delivered;
    }
    ++failed;
    ++stats_.failed_fetches;
    if (failed == options_.retry_threshold && adaptive() && !OverloadSuppressesSwitch() &&
        slow_streak_ + 1 >= options_.slow_calls_before_switch) {
      // This call and its predecessors were all slow: fall back.
      stats_.retries_per_call.Record(failed);
      client_busy_.AddBusy(engine_.now() - start - slept);
      co_await SwitchToReply();
      co_return co_await AwaitReply(out);
    }
    if (deadline != 0 && engine_.now() >= deadline) {
      // The fetch deadline expired mid-call: the server is unreachable,
      // crashed, or pathologically slow.
      ++stats_.fetch_timeouts;
      RecordBreakerOutcome(true, scalar_breaker_epoch_);
      if (sim::TraceSink* trace = engine_.trace_sink()) {
        trace->Instant("rfp", "fetch_timeout", reinterpret_cast<uint64_t>(this), engine_.now());
      }
      if (adaptive()) {
        // Fall back to server-reply without waiting out the slow streak.
        // Deliberately NOT gated on the overload override: the timeout is
        // the crash-recovery path, and the abandoned READs stay in the
        // primary counters (the call completes via the reply push).
        stats_.retries_per_call.Record(failed);
        client_busy_.AddBusy(engine_.now() - start - slept);
        co_await SwitchToReply();
        co_return co_await AwaitReply(out);
      }
      if (++reissues > options_.max_reissue_attempts) {
        throw std::runtime_error("rfp channel: fetch timed out after max reissues");
      }
      TransferAttemptReads(&attempt_reads);
      co_await ReissueRequest();
      deadline = engine_.now() + options_.fetch_timeout_ns;
      failed = 0;
    }
    if (call_deadline_ != 0 && engine_.now() >= call_deadline_) {
      // The call's own deadline is authoritative: the caller abandons the
      // result whether the server is slow, saturated, or dark. (The fetch
      // timeout above fires first when configured shorter, keeping its
      // switch/reissue recovery semantics.)
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      client_busy_.AddBusy(engine_.now() - start - slept);
      throw DeadlineExceeded("rfp channel: call deadline exceeded while fetching");
    }
    if (backoff > 0 && failed > options_.retry_threshold) {
      co_await engine_.Sleep(backoff);
      slept += backoff;
      const sim::Time cap =
          std::max<sim::Time>(options_.fetch_backoff_max_ns, options_.fetch_backoff_initial_ns);
      backoff = std::min<sim::Time>(backoff * 2, cap);
    }
  }
}

sim::Task<void> Channel::SwitchToReply() {
  mode_ = Mode::kServerReply;
  reply_mode_since_ = engine_.now();
  slow_streak_ = 0;
  fast_streak_ = 0;
  ++stats_.switches_to_reply;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "switch_to_reply", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  // Publish the new mode to the server with a one-byte WRITE into the
  // request block's mode field.
  client_.Store<uint8_t>(kRequestModeOffset, static_cast<uint8_t>(Mode::kServerReply));
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(client_.remote_key().rkey, client_.abs(kRequestModeOffset), 1);
  }
  co_await RcOp(/*from_client=*/true, /*is_read=*/false, kRequestModeOffset, kRequestModeOffset,
                1, "mode switch write");
}

sim::Task<size_t> Channel::AwaitReply(std::span<std::byte> out) {
  int reissues = 0;
  int busy_streak = 0;
  while (true) {
    const ResponseHeader header = LandingHeader();
    if (wire::UnpackStatus(header.size_status) && AcceptSeq(header.seq, seq_)) {
      if (wire::UnpackBusy(header.size_status)) {
        // The server shed this request; only the header was pushed.
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceRecvStore, client_.remote_key().rkey,
                        client_.abs(resp_offset_), kHeaderBytes, 0, "busy reply");
        }
        RecordBusyResponse(header, scalar_breaker_epoch_);
        if (wire::UnpackBusyReason(header.size_status) == BusyReason::kDeadline ||
            (call_deadline_ != 0 && engine_.now() >= call_deadline_)) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(options_.reply_poll_cpu_ns);
          throw DeadlineExceeded("rfp channel: call deadline exceeded (request shed)");
        }
        const sim::Time delay = BusyRetryDelay(header.time_us, ++busy_streak);
        co_await engine_.Sleep(delay);
        if (call_deadline_ != 0 && engine_.now() >= call_deadline_) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(options_.reply_poll_cpu_ns);
          throw DeadlineExceeded("rfp channel: call deadline exceeded while backing off");
        }
        if (++reissues > options_.max_reissue_attempts) {
          throw std::runtime_error("rfp channel: request shed after max reissues");
        }
        co_await ReissueRequest();
        client_busy_.AddBusy(options_.reply_poll_cpu_ns);
        continue;
      }
      if (wire::UnpackRedirect(header.size_status)) {
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceRecvStore, client_.remote_key().rkey,
                        client_.abs(resp_offset_), kHeaderBytes, 0, "redirect reply");
          chk->OnClientRecvDone(this);
        }
        ++stats_.redirects;
        client_busy_.AddBusy(options_.reply_poll_cpu_ns);
        throw Redirected(wire::UnpackRedirectEpoch(header.size_status), header.time_us);
      }
      const uint32_t size = wire::UnpackSize(header.size_status);
      if (size > out.size()) {
        throw std::length_error("rfp channel: response larger than output buffer");
      }
      if (options_.checksum_responses && !LandingChecksumOk(size)) {
        // The pushed reply arrived corrupted: re-issue under a fresh seq and
        // wait for the re-executed push (the stale header can no longer
        // match the bumped sequence).
        ++stats_.corrupt_fetches;
        if (++reissues > options_.max_reissue_attempts) {
          throw std::runtime_error("rfp channel: pushed reply corrupt after max reissues");
        }
        co_await ReissueRequest();
        client_busy_.AddBusy(options_.reply_poll_cpu_ns);
        co_await engine_.Sleep(options_.reply_poll_interval_ns);
        continue;
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        // The pushed reply is consumed from the local landing block: every
        // byte must come from the push, not a lingering local store.
        chk->OnAccept(check::ViolationKind::kRaceRecvStore, client_.remote_key().rkey,
                      client_.abs(resp_offset_), kHeaderBytes + size + ChecksumBytes(), 0,
                      "reply await");
      }
      size_t delivered = size;
      if (wire::UnpackIndirect(header.size_status)) {
        // A descriptor staged before the switch to server-reply was pushed
        // as-is; the client can still READ the entry it names.
        delivered = co_await CompleteIndirect(resp_offset_, size, out, "zero-copy entry fetch");
      } else {
        client_.ReadBytes(resp_offset_ + kHeaderBytes, out.subspan(0, size));
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      client_busy_.AddBusy(options_.reply_poll_cpu_ns);
      FinishReplyCall(header, scalar_breaker_epoch_);
      co_return delivered;
    }
    client_busy_.AddBusy(options_.reply_poll_cpu_ns);
    if (call_deadline_ != 0 && engine_.now() >= call_deadline_) {
      // No reply before the call deadline (saturated or dark server): give
      // up. A stale push that lands later is ignored by the bumped seq.
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      throw DeadlineExceeded("rfp channel: call deadline exceeded awaiting reply");
    }
    co_await engine_.Sleep(options_.reply_poll_interval_ns);
  }
}

void Channel::FinishReplyCall(const ResponseHeader& header, uint64_t sent_epoch) {
  last_server_time_us_ = header.time_us;
  RecordBreakerOutcome(false, sent_epoch);
  if (calls_since_busy_ < (1 << 30)) {
    ++calls_since_busy_;
  }
  if (!adaptive()) {
    return;
  }
  if (header.time_us <= options_.switch_back_us) {
    if (++fast_streak_ >= options_.fast_calls_before_switch_back) {
      mode_ = Mode::kRemoteFetch;
      fast_streak_ = 0;
      slow_streak_ = 0;
      ++stats_.switches_to_fetch;
      // The next request header carries the new mode; no extra write needed.
      if (sim::TraceSink* trace = engine_.trace_sink()) {
        trace->Span("rfp", "server_reply_mode", reinterpret_cast<uint64_t>(this),
                    reply_mode_since_, engine_.now());
        trace->Instant("rfp", "switch_to_fetch", reinterpret_cast<uint64_t>(this),
                       engine_.now());
      }
    }
  } else {
    fast_streak_ = 0;
  }
}

uint32_t Channel::EffectiveFetch(uint32_t override_f) const {
  return std::clamp<uint32_t>(override_f, kHeaderBytes, static_cast<uint32_t>(block_bytes_));
}

bool Channel::HasPendingRequest() const {
  if (options_.window > 1) {
    return PendingRequests() > 0;
  }
  const RequestHeader header = server_.Load<RequestHeader>(0);
  return wire::UnpackStatus(header.size_status) && header.seq != last_recv_seq_;
}

int Channel::PendingRequests() const {
  if (options_.window == 1) {
    return HasPendingRequest() ? 1 : 0;
  }
  int pending = 0;
  for (int s = 0; s < options_.window; ++s) {
    const RequestHeader header = server_.Load<RequestHeader>(req_off(s));
    if (wire::UnpackStatus(header.size_status) && header.slot == s &&
        header.seq != sslot(s).last_recv_seq) {
      ++pending;
    }
  }
  return pending;
}

bool Channel::TryServerRecv(std::span<std::byte> out, size_t* size) {
  if (options_.window > 1) {
    return TryServerRecvSlot(out, size);
  }
  const RequestHeader header = server_.Load<RequestHeader>(0);
  if (!wire::UnpackStatus(header.size_status) || header.seq == last_recv_seq_) {
    return false;
  }
  const uint32_t payload = wire::UnpackRequestSize(header.size_status);
  if (payload > out.size()) {
    throw std::length_error("rfp channel: request larger than server buffer");
  }
  if (check::FabricChecker* chk = fabric_->checker()) {
    // The request bytes are consumed by the server thread: every byte must
    // come from the client's WRITE, not a local scribble into the block.
    chk->OnAccept(check::ViolationKind::kRaceRecvStore, server_.remote_key().rkey,
                  server_.abs(0), kReqHeaderBytes + payload, 0, "server recv");
  }
  server_.ReadBytes(kReqHeaderBytes, out.subspan(0, payload));
  *size = payload;
  // A new request on the channel proves the previous response was consumed:
  // release the zero-copy entry pinned for it, if any.
  resp_pin_.reset();
  last_recv_seq_ = header.seq;
  last_recv_deadline_ns_ = header.deadline_ns;
  last_recv_epoch_ = wire::UnpackRequestEpoch(header.size_status);
  recv_time_ = engine_.now();
  return true;
}

sim::Task<void> Channel::ServerSend(std::span<const std::byte> msg) {
  if (msg.size() > options_.max_message_bytes) {
    throw std::invalid_argument("rfp channel: response exceeds max_message_bytes");
  }
  if (options_.window > 1) {
    co_return co_await ServerSendSlot(msg);
  }
  resp_pin_.reset();  // a superseding send releases any pinned entry
  ResponseHeader header;
  header.size_status = wire::PackSizeStatus(static_cast<uint32_t>(msg.size()), true);
  header.time_us = SaturateTimeUs(engine_.now() - recv_time_);
  header.seq = last_recv_seq_;
  check::FabricChecker* chk = fabric_->checker();
  const uint32_t rkey = server_.remote_key().rkey;
  // Store order is the protocol's only fence against concurrent one-sided
  // READs: payload first, then the checksum trailer, and the header — whose
  // status bit + seq are what the client matches on — last. A client fetch
  // that lands between these stores sees a stale header and retries instead
  // of delivering a half-written payload. (The header used to be stored
  // first; the race detector flags that order as race.fetch_store.)
  server_.WriteBytes(resp_offset_ + kHeaderBytes, msg);
  if (chk != nullptr) {
    chk->OnCpuStore(rkey, server_.abs(resp_offset_ + kHeaderBytes), msg.size());
  }
  if (options_.checksum_responses) {
    server_.Store(resp_offset_ + kHeaderBytes + msg.size(),
                      wire::Checksum64(msg, last_recv_seq_));
    if (chk != nullptr) {
      chk->OnCpuStore(rkey, server_.abs(resp_offset_ + kHeaderBytes + msg.size()),
                      kChecksumBytes);
    }
  }
  server_.Store(resp_offset_, header);
  if (chk != nullptr) {
    chk->OnCpuStore(rkey, server_.abs(resp_offset_), kHeaderBytes);
    // The header store publishes the whole response: bytes stored after this
    // point (without a fresh publication) are torn for any matching fetch.
    chk->OnPublish(rkey, server_.abs(resp_offset_),
                   kHeaderBytes + msg.size() + ChecksumBytes());
  }
  last_resp_seq_ = last_recv_seq_;
  last_resp_size_ = static_cast<uint32_t>(msg.size());
  last_resp_busy_ = false;
  response_pushed_ = false;
  if (!defer_server_pushes_ && server_visible_mode() == Mode::kServerReply) {
    co_await PushReply();
  }
}

sim::Task<void> Channel::ServerSendBusy(BusyReason reason, uint16_t retry_after_us) {
  if (options_.window > 1) {
    co_return co_await ServerSendBusySlot(reason, retry_after_us);
  }
  resp_pin_.reset();  // a superseding send releases any pinned entry
  ResponseHeader header;
  header.size_status = wire::PackBusy(reason);
  header.time_us = retry_after_us;
  header.seq = last_recv_seq_;
  const uint32_t rkey = server_.remote_key().rkey;
  // A BUSY response is header-only: the single 8-byte store is its own
  // publication point, so a racing fetch sees either the old header or the
  // complete shed notice.
  server_.Store(resp_offset_, header);
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(rkey, server_.abs(resp_offset_), kHeaderBytes);
    chk->OnPublish(rkey, server_.abs(resp_offset_), kHeaderBytes);
  }
  if (reason == BusyReason::kAdmission) {
    ++stats_.shed_admission;
  } else {
    ++stats_.shed_deadline;
  }
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp",
                   reason == BusyReason::kAdmission ? "shed_admission" : "shed_deadline",
                   reinterpret_cast<uint64_t>(this), engine_.now());
  }
  last_resp_seq_ = last_recv_seq_;
  last_resp_size_ = 0;
  last_resp_busy_ = true;
  response_pushed_ = false;
  if (!defer_server_pushes_ && server_visible_mode() == Mode::kServerReply) {
    co_await PushReply();
  }
}

sim::Task<void> Channel::ServerSendRedirect(uint32_t epoch, uint16_t leader_hint) {
  if (options_.window > 1) {
    co_return co_await ServerSendRedirectSlot(epoch, leader_hint);
  }
  resp_pin_.reset();  // a superseding send releases any pinned entry
  ResponseHeader header;
  header.size_status = wire::PackRedirect(epoch);
  header.time_us = leader_hint;
  header.seq = last_recv_seq_;
  const uint32_t rkey = server_.remote_key().rkey;
  // Like BUSY, a REDIRECT is header-only: the single 8-byte store is its own
  // publication point.
  server_.Store(resp_offset_, header);
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(rkey, server_.abs(resp_offset_), kHeaderBytes);
    chk->OnPublish(rkey, server_.abs(resp_offset_), kHeaderBytes);
  }
  ++stats_.shed_redirect;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "shed_redirect", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  last_resp_seq_ = last_recv_seq_;
  last_resp_size_ = 0;
  last_resp_busy_ = true;  // header-only, like BUSY, for resend/flush sizing
  response_pushed_ = false;
  if (!defer_server_pushes_ && server_visible_mode() == Mode::kServerReply) {
    co_await PushReply();
  }
}

void Channel::StageIndirect(int slot, uint16_t seq, uint16_t time_us,
                            std::span<const std::byte> prefix, const ZeroCopyRef& ref) {
  const size_t off = land_off(slot);  // == resp_offset_ on window=1 (slot 0)
  wire::IndirectRef desc;
  desc.rkey = ref.rkey;
  desc.value_len = ref.len;
  desc.value_offset = static_cast<uint64_t>(ref.offset);
  desc.prefix_len = static_cast<uint32_t>(prefix.size());
  desc.epoch = ref.epoch;
  const uint32_t staged = static_cast<uint32_t>(sizeof(wire::IndirectRef) + prefix.size());
  check::FabricChecker* chk = fabric_->checker();
  const uint32_t rkey = server_.remote_key().rkey;
  // Same publication order as ServerSend: staged payload, checksum trailer,
  // header last. The header store also publishes the ENTRY range — from this
  // point the store must not touch the pinned value bytes until the channel
  // releases the pin, or a client fetch can assemble a torn value (the race
  // detector reports exactly that as race.fetch_store on the entry range).
  server_.Store(off + kHeaderBytes, desc);
  server_.WriteBytes(off + kHeaderBytes + sizeof(wire::IndirectRef), prefix);
  if (chk != nullptr) {
    chk->OnCpuStore(rkey, server_.abs(off + kHeaderBytes), staged);
  }
  if (options_.checksum_responses) {
    // The trailer covers the staged descriptor+prefix only; the value's
    // integrity is the pin contract, proven by the race detector.
    const std::span<const std::byte> staged_bytes =
        server_.bytes().subspan(off + kHeaderBytes, staged);
    server_.Store(off + kHeaderBytes + staged, wire::Checksum64(staged_bytes, seq));
    if (chk != nullptr) {
      chk->OnCpuStore(rkey, server_.abs(off + kHeaderBytes + staged), kChecksumBytes);
    }
  }
  ResponseHeader header;
  header.size_status = wire::PackIndirect(staged);
  header.time_us = time_us;
  header.seq = seq;
  server_.Store(off, header);
  if (chk != nullptr) {
    chk->OnCpuStore(rkey, server_.abs(off), kHeaderBytes);
    chk->OnPublish(rkey, server_.abs(off), kHeaderBytes + staged + ChecksumBytes());
    chk->OnPublish(ref.rkey, ref.offset, ref.len);
  }
  ++stats_.zero_copy_sends;
}

sim::Task<void> Channel::ServerSendZeroCopy(std::span<const std::byte> prefix,
                                            const ZeroCopyRef& ref) {
  if (!ref.valid()) {
    throw std::invalid_argument("rfp channel: zero-copy send without a valid entry ref");
  }
  const size_t staged = sizeof(wire::IndirectRef) + prefix.size();
  if (staged > options_.max_message_bytes) {
    throw std::invalid_argument("rfp channel: zero-copy prefix exceeds max_message_bytes");
  }
  if (server_visible_mode() == Mode::kServerReply) {
    // The client stopped fetching, so a descriptor alone cannot reach it:
    // materialize prefix+value once (together they must fit
    // max_message_bytes) and push through the regular copy path.
    rdma::MemoryRegion* entry = fabric_->FindRemote(rdma::RemoteKey{ref.rkey});
    if (entry == nullptr) {
      throw std::invalid_argument("rfp channel: zero-copy ref names an unregistered region");
    }
    std::vector<std::byte> full(prefix.size() + ref.len);
    rdma::CopyBytes(std::span<std::byte>(full).subspan(0, prefix.size()), prefix);
    entry->ReadBytes(ref.offset, std::span<std::byte>(full).subspan(prefix.size()));
    ++stats_.zero_copy_fallbacks;
    co_return co_await ServerSend(full);
  }
  if (options_.window > 1) {
    const int s = last_recv_slot_;
    ServerSlot& ss = sslot(s);
    ss.pin.reset();  // a superseding send releases the previous entry
    StageIndirect(s, ss.last_recv_seq, SaturateTimeUs(engine_.now() - ss.recv_time), prefix,
                  ref);
    ss.pin = ref.pin;
    ss.last_resp_seq = ss.last_recv_seq;
    ss.last_resp_size = static_cast<uint32_t>(staged);
    ss.last_resp_busy = false;
    ss.response_pushed = false;
  } else {
    resp_pin_.reset();
    StageIndirect(0, last_recv_seq_, SaturateTimeUs(engine_.now() - recv_time_), prefix, ref);
    resp_pin_ = ref.pin;
    last_resp_seq_ = last_recv_seq_;
    last_resp_size_ = static_cast<uint32_t>(staged);
    last_resp_busy_ = false;
    response_pushed_ = false;
  }
}

sim::Task<size_t> Channel::CompleteIndirect(size_t land, uint32_t staged_size,
                                            std::span<std::byte> out, const char* what) {
  if (staged_size < sizeof(wire::IndirectRef)) {
    throw std::runtime_error("rfp channel: indirect response too small for its descriptor");
  }
  const wire::IndirectRef desc = client_.Load<wire::IndirectRef>(land + kHeaderBytes);
  if (desc.prefix_len != staged_size - sizeof(wire::IndirectRef)) {
    throw std::runtime_error("rfp channel: indirect descriptor prefix length mismatch");
  }
  const size_t total = static_cast<size_t>(desc.prefix_len) + desc.value_len;
  if (total > out.size()) {
    throw std::length_error("rfp channel: response larger than output buffer");
  }
  client_.ReadBytes(land + kHeaderBytes + sizeof(wire::IndirectRef),
                    out.subspan(0, desc.prefix_len));
  if (desc.value_len == 0) {
    co_return total;
  }
  // Land the value in a pool bounce span, not the landing ring: the entry can
  // be far larger than a ring block. The client still performs exactly one
  // local copy per call (bounce -> out), same as the staged path's
  // landing -> out.
  mem::Span bounce = client_pool_->Alloc(desc.value_len);
  try {
    const rdma::WorkCompletion wc =
        co_await FetchEntry(*bounce.mr, bounce.offset, desc.rkey,
                            static_cast<size_t>(desc.value_offset), desc.value_len, what);
    ++stats_.fetch_reads;
    ++stats_.zero_copy_fetches;
    stats_.zero_copy_bytes += desc.value_len;
    if (check::FabricChecker* chk = fabric_->checker()) {
      // The entry bytes become part of the call's result: the store must not
      // have scribbled on them since publication (the pin contract).
      chk->OnAccept(check::ViolationKind::kRaceFetchStore, desc.rkey,
                    static_cast<size_t>(desc.value_offset), desc.value_len, wc.check_tick,
                    "entry fetch");
    }
    bounce.mr->ReadBytes(bounce.offset, out.subspan(desc.prefix_len, desc.value_len));
  } catch (...) {
    client_pool_->Free(bounce);
    throw;
  }
  client_pool_->Free(bounce);
  co_return total;
}

sim::Task<void> Channel::PushReply() {
  // BUSY responses carry no payload (and no checksum trailer): push the
  // header only.
  const uint32_t len =
      last_resp_busy_ ? kHeaderBytes : kHeaderBytes + last_resp_size_ + ChecksumBytes();
  co_await RcOp(/*from_client=*/false, /*is_read=*/false, resp_offset_, resp_offset_, len,
                "reply push");
  response_pushed_ = true;
  ++stats_.reply_pushes;
}

bool Channel::LandingChecksumOk(uint32_t size) const {
  const uint64_t stored = client_.Load<uint64_t>(resp_offset_ + kHeaderBytes + size);
  const std::span<const std::byte> payload =
      client_.bytes().subspan(resp_offset_ + kHeaderBytes, size);
  return stored == wire::Checksum64(payload, seq_);
}

sim::Task<rdma::WorkCompletion> Channel::RcOp(bool from_client, bool is_read, size_t local_off,
                                              size_t remote_off, uint32_t len, const char* what) {
  // Ring offsets are ring-relative; shift by the pooled span's base here, at
  // the MR boundary.
  const RingView& local = from_client ? client_ : server_;
  const RingView& remote = from_client ? server_ : client_;
  for (int attempt = 0;; ++attempt) {
    // Re-resolve the QP each attempt: a reconnect replaces it.
    rdma::QueuePair* qp = from_client ? client_qp_ : server_qp_;
    const rdma::WorkCompletion wc =
        is_read ? co_await qp->Read(*local.mr, local.abs(local_off), remote.remote_key(),
                                    remote.abs(remote_off), len)
                : co_await qp->Write(*local.mr, local.abs(local_off), remote.remote_key(),
                                     remote.abs(remote_off), len);
    if (wc.status != rdma::WcStatus::kQpError) {
      CheckOk(wc, what);
      co_return wc;
    }
    if (attempt >= options_.max_reconnect_attempts) {
      CheckOk(wc, what);  // throws, reporting QP_ERROR
    }
    co_await EnsureConnected(qp);
  }
}

sim::Task<rdma::WorkCompletion> Channel::FetchEntry(rdma::MemoryRegion& local_mr,
                                                    size_t local_off, uint32_t rkey,
                                                    size_t remote_off, uint32_t len,
                                                    const char* what) {
  // The zero-copy entry READ: the remote target is a raw (rkey, absolute
  // offset) pair naming a store-owned registered entry, not the peer ring;
  // the local landing is a pool bounce span. Same reconnect contract as RcOp.
  for (int attempt = 0;; ++attempt) {
    rdma::QueuePair* qp = client_qp_;
    const rdma::WorkCompletion wc =
        co_await qp->Read(local_mr, local_off, rdma::RemoteKey{rkey}, remote_off, len);
    if (wc.status != rdma::WcStatus::kQpError) {
      CheckOk(wc, what);
      co_return wc;
    }
    if (attempt >= options_.max_reconnect_attempts) {
      CheckOk(wc, what);  // throws, reporting QP_ERROR
    }
    co_await EnsureConnected(qp);
  }
}

sim::Task<void> Channel::EnsureConnected(rdma::QueuePair* failed) {
  // If another actor is mid-reconnect (the client's fetch and the server's
  // push can observe the same failure), wait it out instead of racing a
  // second connection.
  while (reconnect_in_progress_) {
    co_await engine_.Sleep(options_.reconnect_delay_ns / 4 + 1);
  }
  if (failed != client_qp_ && failed != server_qp_) {
    co_return;  // already replaced by whoever observed the error first
  }
  reconnect_in_progress_ = true;
  ++stats_.reconnects;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "reconnect", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  // Connection re-establishment (QP teardown + out-of-band handshake).
  co_await engine_.Sleep(options_.reconnect_delay_ns);
  rdma::QueuePair* old_client = client_qp_;
  rdma::QueuePair* old_server = server_qp_;
  auto [cqp, sqp] = fabric_->ConnectRc(*client_node_, *server_node_);
  client_qp_ = cqp;
  server_qp_ = sqp;
  // Tear the replaced endpoints out of the fabric. Without this every
  // reconnect leaked the old pair into the address map and the NIC's
  // active-QP census, and a stale pointer could keep posting on it.
  fabric_->RetireQp(old_client);
  fabric_->RetireQp(old_server);
  reconnect_in_progress_ = false;
}

sim::Task<void> Channel::ReissueRequest() {
  ++stats_.reissues;
  if (++seq_ == 0) {
    ++seq_;  // 0 stays reserved for "never used"
  }
  RequestHeader header;
  header.size_status = wire::PackRequestSizeStatus(last_req_size_, true, request_epoch_);
  header.seq = seq_;
  header.mode = static_cast<uint8_t>(mode_);
  header.deadline_ns = static_cast<uint64_t>(call_deadline_);
  client_.Store(0, header);  // the payload is still staged from ClientSend
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(client_.remote_key().rkey, client_.abs(0), kReqHeaderBytes);
  }
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "reissue", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  co_await RcOp(/*from_client=*/true, /*is_read=*/false, 0, 0, kReqHeaderBytes + last_req_size_,
                "request reissue");
  // Recovery traffic, not a primary-path WRITE: request_writes stays 1:1
  // with issued calls so RoundTripsPerCall keeps the Table-3 semantics.
  ++stats_.recovery_request_writes;
}

bool Channel::NeedsReplyResend() const {
  if (unsafe_switch_race_ || server_visible_mode() != Mode::kServerReply) {
    return false;
  }
  if (options_.window == 1) {
    return !response_pushed_ && last_resp_seq_ != 0;
  }
  for (const ServerSlot& ss : sslots_) {
    if (!ss.response_pushed && ss.last_resp_seq != 0) {
      return true;
    }
  }
  return false;
}

sim::Task<void> Channel::MaybeResendAfterSwitch() {
  if (unsafe_switch_race_ || server_visible_mode() != Mode::kServerReply) {
    co_return;
  }
  if (options_.window == 1) {
    if (!response_pushed_ && last_resp_seq_ != 0) {
      co_await PushReply();
    }
    co_return;
  }
  for (int s = 0; s < options_.window; ++s) {
    if (!sslot(s).response_pushed && sslot(s).last_resp_seq != 0) {
      co_await PushReplySlot(s);
    }
  }
}

sim::Task<void> Channel::FlushServerPushes() {
  if (server_visible_mode() != Mode::kServerReply) {
    co_return;  // remote fetch: responses are local stores, nothing to push
  }
  if (options_.window == 1) {
    if (!response_pushed_ && last_resp_seq_ != 0) {
      co_await PushReply();
    }
    co_return;
  }
  std::vector<BatchOp> ops;
  std::vector<int> slots;
  for (int s = 0; s < options_.window; ++s) {
    const ServerSlot& ss = sslot(s);
    if (ss.response_pushed || ss.last_resp_seq == 0) {
      continue;
    }
    const uint32_t len =
        ss.last_resp_busy ? kHeaderBytes : kHeaderBytes + ss.last_resp_size + ChecksumBytes();
    ops.push_back({/*is_read=*/false, land_off(s), land_off(s), len});
    slots.push_back(s);
  }
  if (ops.empty()) {
    co_return;
  }
  if (ops.size() == 1) {
    // A lone push needs no doorbell batch; keeps window=1-equivalent visits
    // (one completed slot) off the batch counters.
    co_await PushReplySlot(slots[0]);
    co_return;
  }
  co_await RcBatch(/*from_client=*/false, ops, "reply push batch");
  for (int s : slots) {
    sslot(s).response_pushed = true;
    ++stats_.reply_pushes;
  }
}

// ---- Pipelined calls (docs/pipelining.md) ------------------------------------

sim::Task<Channel::CallHandle> Channel::SubmitCall(std::span<const std::byte> msg,
                                                   const CallOptions& opts) {
  if (options_.window == 1) {
    // Degenerate pipelining: SubmitCall is exactly ClientSend; the per-call
    // fetch size is parked for the paired ClientRecv/AwaitCall.
    fetch_override_ = opts.fetch_size;
    co_await ClientSend(msg, opts.deadline_ns);
    co_return CallHandle{0, seq_};
  }
  if (msg.size() > options_.max_message_bytes) {
    throw std::invalid_argument("rfp channel: request exceeds max_message_bytes");
  }
  co_await MaybeAwaitBreaker();
  int slot = -1;
  for (int s = 0; s < options_.window; ++s) {
    if (cslot(s).state == ClientSlot::State::kFree) {
      slot = s;
      break;
    }
  }
  if (slot < 0) {
    // Thrown before the checker's OnClientSend: a rejected submit never
    // becomes an outstanding call.
    throw std::runtime_error("rfp channel: call window full");
  }
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnClientSend(this);
  }
  if (++seq_ == 0) {
    ++seq_;  // reserve 0 for "never used"
  }
  ClientSlot& cs = cslot(slot);
  cs = ClientSlot{};
  cs.state = ClientSlot::State::kStaged;
  cs.breaker_epoch = breaker_epoch_;
  cs.seq = seq_;
  cs.req_bytes = static_cast<uint32_t>(msg.size());
  cs.deadline = opts.deadline_ns != 0 ? opts.deadline_ns
                : options_.call_deadline_ns > 0 ? engine_.now() + options_.call_deadline_ns
                                                : 0;
  cs.fetch_override = opts.fetch_size;
  RequestHeader header;
  header.size_status = wire::PackRequestSizeStatus(cs.req_bytes, true, request_epoch_);
  header.seq = cs.seq;
  header.mode = static_cast<uint8_t>(mode_);
  header.slot = static_cast<uint8_t>(slot);
  header.deadline_ns = static_cast<uint64_t>(cs.deadline);
  client_.Store(req_off(slot), header);
  client_.WriteBytes(req_off(slot) + kReqHeaderBytes, msg);
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(client_.remote_key().rkey, client_.abs(req_off(slot)),
                    kReqHeaderBytes + msg.size());
  }
  ++staged_count_;
  stats_.submit_window.Record(posted_count_ + staged_count_);
  co_return CallHandle{slot, cs.seq};
}

sim::Task<void> Channel::FlushCalls() {
  if (options_.window == 1 || staged_count_ == 0) {
    co_return;
  }
  const sim::Time start = engine_.now();
  std::vector<BatchOp> ops;
  std::vector<int> slots;
  ops.reserve(static_cast<size_t>(staged_count_));
  slots.reserve(static_cast<size_t>(staged_count_));
  check::FabricChecker* chk = fabric_->checker();
  for (int s = 0; s < options_.window; ++s) {
    const ClientSlot& cs = cslot(s);
    if (cs.state != ClientSlot::State::kStaged) {
      continue;
    }
    // Refresh the staged header's mode byte: the channel may have switched
    // paradigms since the submit, and slot 0's mode byte in the server block
    // is the server's source of truth — posting a stale one would revert it.
    client_.Store<uint8_t>(req_off(s) + kRequestModeOffset, static_cast<uint8_t>(mode_));
    if (chk != nullptr) {
      chk->OnCpuStore(client_.remote_key().rkey, client_.abs(req_off(s) + kRequestModeOffset), 1);
    }
    ops.push_back({/*is_read=*/false, req_off(s), req_off(s),
                   kReqHeaderBytes + cs.req_bytes});
    slots.push_back(s);
  }
  co_await RcBatch(/*from_client=*/true, ops, "request batch write");
  for (int s : slots) {
    cslot(s).state = ClientSlot::State::kPosted;
    ++stats_.calls;
    ++stats_.request_writes;
    ++posted_count_;
  }
  staged_count_ = 0;
  client_busy_.AddBusy(engine_.now() - start);
}

sim::Task<size_t> Channel::AwaitCall(CallHandle handle, std::span<std::byte> out) {
  if (options_.window == 1) {
    if (handle.seq != seq_) {
      throw std::invalid_argument("rfp channel: stale call handle");
    }
    co_return co_await ClientRecv(out);
  }
  if (handle.slot < 0 || handle.slot >= options_.window) {
    throw std::invalid_argument("rfp channel: call handle slot out of range");
  }
  const int slot = handle.slot;
  ClientSlot& cs = cslot(slot);
  if (cs.state == ClientSlot::State::kFree || cs.seq != handle.seq) {
    throw std::invalid_argument("rfp channel: stale call handle");
  }
  const sim::Time start = engine_.now();
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnClientRecvStart(this);
  }
  co_await FlushCalls();
  sim::Time fetch_deadline =
      options_.fetch_timeout_ns > 0 ? start + options_.fetch_timeout_ns : 0;
  sim::Time backoff = options_.fetch_backoff_initial_ns;
  sim::Time slept = 0;  // backoff sleeps are idle time, not client CPU
  while (true) {
    if (mode_ == Mode::kServerReply) {
      co_return co_await AwaitReplySlot(slot, out);
    }
    if (!cs.landing_ready) {
      co_await FetchSweep(slot);
    }
    if (cs.landing_ready) {
      const ResponseHeader header = client_.Load<ResponseHeader>(land_off(slot));
      if (wire::UnpackBusy(header.size_status)) {
        cs.landing_ready = false;
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceFetchStore, server_.remote_key().rkey,
                        server_.abs(land_off(slot)),
                        std::min<uint32_t>(kHeaderBytes, cs.fetched_len),
                        cs.fetch_tick, "busy fetch");
        }
        RecordBusyResponse(header, cs.breaker_epoch);
        if (wire::UnpackBusyReason(header.size_status) == BusyReason::kDeadline ||
            (cs.deadline != 0 && engine_.now() >= cs.deadline)) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(engine_.now() - start - slept);
          FreeSlot(slot);
          throw DeadlineExceeded("rfp channel: call deadline exceeded (request shed)");
        }
        const sim::Time delay = BusyRetryDelay(header.time_us, ++cs.busy_streak);
        co_await engine_.Sleep(delay);
        slept += delay;
        if (cs.deadline != 0 && engine_.now() >= cs.deadline) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(engine_.now() - start - slept);
          FreeSlot(slot);
          throw DeadlineExceeded("rfp channel: call deadline exceeded while backing off");
        }
        if (++cs.reissues > options_.max_reissue_attempts) {
          FreeSlot(slot);
          throw std::runtime_error("rfp channel: request shed after max reissues");
        }
        TransferAttemptReads(&cs.attempt_reads);
        co_await ReissueRequestSlot(slot);
        if (fetch_deadline != 0) {
          fetch_deadline = engine_.now() + options_.fetch_timeout_ns;
        }
        cs.failed = 0;
        continue;
      }
      if (wire::UnpackRedirect(header.size_status)) {
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceFetchStore, server_.remote_key().rkey,
                        server_.abs(land_off(slot)),
                        std::min<uint32_t>(kHeaderBytes, cs.fetched_len),
                        cs.fetch_tick, "redirect fetch");
          chk->OnClientRecvDone(this);
        }
        ++stats_.redirects;
        client_busy_.AddBusy(engine_.now() - start - slept);
        const Redirected redirected(wire::UnpackRedirectEpoch(header.size_status),
                                    header.time_us);
        FreeSlot(slot);
        throw redirected;
      }
      cs.busy_streak = 0;
      const uint32_t size = wire::UnpackSize(header.size_status);
      if (size > out.size()) {
        FreeSlot(slot);
        throw std::length_error("rfp channel: response larger than output buffer");
      }
      const uint32_t total = kHeaderBytes + size + ChecksumBytes();
      uint64_t remainder_tick = 0;
      if (total > cs.fetched_len) {
        // The sweep's fetch was short: one more READ collects the remainder.
        const rdma::WorkCompletion rest_wc = co_await RcOp(
            true, true, land_off(slot) + cs.fetched_len, land_off(slot) + cs.fetched_len,
            total - cs.fetched_len, "remainder fetch");
        remainder_tick = rest_wc.check_tick;
        ++stats_.fetch_reads;
        ++cs.attempt_reads;
        ++stats_.extra_fetches;
      }
      if (options_.checksum_responses && !SlotChecksumOk(slot, size)) {
        ++stats_.corrupt_fetches;
        cs.landing_ready = false;
        if (++cs.corrupt >= options_.corrupt_fetches_before_reissue) {
          if (++cs.reissues > options_.max_reissue_attempts) {
            FreeSlot(slot);
            throw std::runtime_error("rfp channel: response corrupt after max reissues");
          }
          TransferAttemptReads(&cs.attempt_reads);
          co_await ReissueRequestSlot(slot);
          cs.corrupt = 0;
        }
        continue;
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        const uint32_t rkey = server_.remote_key().rkey;
        chk->OnAccept(check::ViolationKind::kRaceFetchStore, rkey, server_.abs(land_off(slot)),
                      std::min(total, cs.fetched_len), cs.fetch_tick, "result fetch");
        if (total > cs.fetched_len) {
          chk->OnAccept(check::ViolationKind::kRaceFetchStore, rkey,
                        server_.abs(land_off(slot) + cs.fetched_len), total - cs.fetched_len,
                        remainder_tick, "remainder fetch");
        }
      }
      size_t delivered = size;
      if (wire::UnpackIndirect(header.size_status)) {
        try {
          delivered =
              co_await CompleteIndirect(land_off(slot), size, out, "zero-copy entry fetch");
        } catch (...) {
          FreeSlot(slot);
          throw;
        }
      } else {
        client_.ReadBytes(land_off(slot) + kHeaderBytes, out.subspan(0, size));
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      last_server_time_us_ = header.time_us;
      stats_.retries_per_call.Record(cs.failed);
      // ">=" rather than the scalar path's "==": a piggybacked sweep can step
      // another slot's failure count past R between this slot's awaits.
      slow_streak_ = cs.failed >= options_.retry_threshold && !OverloadSuppressesSwitch()
                         ? slow_streak_ + 1
                         : 0;
      RecordBreakerOutcome(false, cs.breaker_epoch);
      if (calls_since_busy_ < (1 << 30)) {
        ++calls_since_busy_;
      }
      client_busy_.AddBusy(engine_.now() - start - slept);
      FreeSlot(slot);
      co_return delivered;
    }
    // The sweep came back without this slot's response.
    if (cs.failed >= options_.retry_threshold && adaptive() && !OverloadSuppressesSwitch() &&
        slow_streak_ + 1 >= options_.slow_calls_before_switch) {
      stats_.retries_per_call.Record(cs.failed);
      client_busy_.AddBusy(engine_.now() - start - slept);
      co_await SwitchToReply();
      co_return co_await AwaitReplySlot(slot, out);
    }
    if (fetch_deadline != 0 && engine_.now() >= fetch_deadline) {
      ++stats_.fetch_timeouts;
      RecordBreakerOutcome(true, cs.breaker_epoch);
      if (sim::TraceSink* trace = engine_.trace_sink()) {
        trace->Instant("rfp", "fetch_timeout", reinterpret_cast<uint64_t>(this), engine_.now());
      }
      if (adaptive()) {
        stats_.retries_per_call.Record(cs.failed);
        client_busy_.AddBusy(engine_.now() - start - slept);
        co_await SwitchToReply();
        co_return co_await AwaitReplySlot(slot, out);
      }
      if (++cs.reissues > options_.max_reissue_attempts) {
        FreeSlot(slot);
        throw std::runtime_error("rfp channel: fetch timed out after max reissues");
      }
      TransferAttemptReads(&cs.attempt_reads);
      co_await ReissueRequestSlot(slot);
      fetch_deadline = engine_.now() + options_.fetch_timeout_ns;
      cs.failed = 0;
    }
    if (cs.deadline != 0 && engine_.now() >= cs.deadline) {
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      client_busy_.AddBusy(engine_.now() - start - slept);
      FreeSlot(slot);
      throw DeadlineExceeded("rfp channel: call deadline exceeded while fetching");
    }
    if (backoff > 0 && cs.failed > options_.retry_threshold) {
      co_await engine_.Sleep(backoff);
      slept += backoff;
      const sim::Time cap =
          std::max<sim::Time>(options_.fetch_backoff_max_ns, options_.fetch_backoff_initial_ns);
      backoff = std::min<sim::Time>(backoff * 2, cap);
    }
  }
}

sim::Task<void> Channel::FetchSweep(int primary) {
  if (options_.coalesced_fetch) {
    // Slots still awaiting a response. Response slots are contiguous in the
    // ring ([resp 0..W-1], block_bytes_ apart), so one spanning READ from the
    // lowest pending slot through the highest covers them all.
    std::vector<int> pending;
    int lo = options_.window;
    int hi = -1;
    for (int s = 0; s < options_.window; ++s) {
      const ClientSlot& cs = cslot(s);
      if (cs.state == ClientSlot::State::kPosted && !cs.landing_ready) {
        pending.push_back(s);
        lo = std::min(lo, s);
        hi = std::max(hi, s);
      }
    }
    if (pending.size() >= 2) {
      // Whole blocks, so no slot ever needs a remainder fetch (a block holds
      // the largest response + trailer). Re-landing the bytes of a ready-but-
      // unawaited slot inside the span is benign: the server cannot rewrite a
      // slot until the client frees it, so identical bytes land again. The
      // span is ONE in-bound op at the server: service max(gap, bytes/bw)
      // instead of one 89 ns gap per slot — the per-call in-bound cost drops
      // toward the single request WRITE (docs/multicore.md).
      const uint32_t len = static_cast<uint32_t>(static_cast<size_t>(hi - lo + 1) * block_bytes_);
      const std::vector<BatchOp> span{{/*is_read=*/true, land_off(lo), land_off(lo), len}};
      const std::vector<rdma::WorkCompletion> wcs =
          co_await RcBatch(/*from_client=*/true, span, "coalesced fetch");
      ++stats_.fetch_reads;
      ++stats_.coalesced_fetches;
      stats_.coalesced_slots += pending.size();
      // The span is one wire READ; attribute it to the awaited slot so a
      // re-issue moves exactly one op into the recovery bucket.
      ++cslot(primary).attempt_reads;
      for (int s : pending) {
        ClientSlot& cs = cslot(s);
        const ResponseHeader header = client_.Load<ResponseHeader>(land_off(s));
        if (wire::UnpackStatus(header.size_status) && AcceptSeq(header.seq, cs.seq)) {
          cs.landing_ready = true;
          cs.fetch_tick = wcs[0].check_tick;
          cs.fetched_len = static_cast<uint32_t>(block_bytes_);
        } else {
          ++cs.failed;
          ++stats_.failed_fetches;
        }
      }
      co_return;
    }
    // A single pending slot falls through to the per-slot READ below (which
    // honors fetch_size and per-call overrides).
  }
  std::vector<BatchOp> ops;
  std::vector<int> slots;
  const auto add = [&](int s) {
    const ClientSlot& cs = cslot(s);
    if (cs.state != ClientSlot::State::kPosted || cs.landing_ready) {
      return;
    }
    const uint32_t f =
        cs.fetch_override != 0 ? EffectiveFetch(cs.fetch_override) : options_.fetch_size;
    ops.push_back({/*is_read=*/true, land_off(s), land_off(s), f});
    slots.push_back(s);
  };
  // The awaited slot leads (it pays the doorbell); every other in-flight
  // slot's fetch rides the same batch at the marginal issue cost.
  add(primary);
  for (int s = 0; s < options_.window; ++s) {
    if (s != primary) {
      add(s);
    }
  }
  if (ops.empty()) {
    co_return;
  }
  const std::vector<rdma::WorkCompletion> wcs =
      co_await RcBatch(/*from_client=*/true, ops, "result fetch");
  for (size_t i = 0; i < slots.size(); ++i) {
    ClientSlot& cs = cslot(slots[i]);
    ++stats_.fetch_reads;
    ++cs.attempt_reads;
    const ResponseHeader header = client_.Load<ResponseHeader>(land_off(slots[i]));
    if (wire::UnpackStatus(header.size_status) && AcceptSeq(header.seq, cs.seq)) {
      cs.landing_ready = true;
      cs.fetch_tick = wcs[i].check_tick;
      cs.fetched_len = ops[i].len;
    } else {
      ++cs.failed;
      ++stats_.failed_fetches;
    }
  }
}

sim::Task<size_t> Channel::AwaitReplySlot(int slot, std::span<std::byte> out) {
  ClientSlot& cs = cslot(slot);
  while (true) {
    const ResponseHeader header = client_.Load<ResponseHeader>(land_off(slot));
    if (wire::UnpackStatus(header.size_status) && AcceptSeq(header.seq, cs.seq)) {
      if (wire::UnpackBusy(header.size_status)) {
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceRecvStore, client_.remote_key().rkey,
                        client_.abs(land_off(slot)), kHeaderBytes, 0, "busy reply");
        }
        RecordBusyResponse(header, cs.breaker_epoch);
        if (wire::UnpackBusyReason(header.size_status) == BusyReason::kDeadline ||
            (cs.deadline != 0 && engine_.now() >= cs.deadline)) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(options_.reply_poll_cpu_ns);
          FreeSlot(slot);
          throw DeadlineExceeded("rfp channel: call deadline exceeded (request shed)");
        }
        const sim::Time delay = BusyRetryDelay(header.time_us, ++cs.busy_streak);
        co_await engine_.Sleep(delay);
        if (cs.deadline != 0 && engine_.now() >= cs.deadline) {
          if (check::FabricChecker* chk = fabric_->checker()) {
            chk->OnClientRecvDone(this);
          }
          client_busy_.AddBusy(options_.reply_poll_cpu_ns);
          FreeSlot(slot);
          throw DeadlineExceeded("rfp channel: call deadline exceeded while backing off");
        }
        if (++cs.reissues > options_.max_reissue_attempts) {
          FreeSlot(slot);
          throw std::runtime_error("rfp channel: request shed after max reissues");
        }
        co_await ReissueRequestSlot(slot);
        client_busy_.AddBusy(options_.reply_poll_cpu_ns);
        continue;
      }
      if (wire::UnpackRedirect(header.size_status)) {
        if (check::FabricChecker* chk = fabric_->checker()) {
          chk->OnAccept(check::ViolationKind::kRaceRecvStore, client_.remote_key().rkey,
                        client_.abs(land_off(slot)), kHeaderBytes, 0, "redirect reply");
          chk->OnClientRecvDone(this);
        }
        ++stats_.redirects;
        client_busy_.AddBusy(options_.reply_poll_cpu_ns);
        const Redirected redirected(wire::UnpackRedirectEpoch(header.size_status),
                                    header.time_us);
        FreeSlot(slot);
        throw redirected;
      }
      const uint32_t size = wire::UnpackSize(header.size_status);
      if (size > out.size()) {
        FreeSlot(slot);
        throw std::length_error("rfp channel: response larger than output buffer");
      }
      if (options_.checksum_responses && !SlotChecksumOk(slot, size)) {
        ++stats_.corrupt_fetches;
        if (++cs.reissues > options_.max_reissue_attempts) {
          FreeSlot(slot);
          throw std::runtime_error("rfp channel: pushed reply corrupt after max reissues");
        }
        co_await ReissueRequestSlot(slot);
        client_busy_.AddBusy(options_.reply_poll_cpu_ns);
        co_await engine_.Sleep(options_.reply_poll_interval_ns);
        continue;
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnAccept(check::ViolationKind::kRaceRecvStore, client_.remote_key().rkey,
                      client_.abs(land_off(slot)), kHeaderBytes + size + ChecksumBytes(), 0,
                      "reply await");
      }
      size_t delivered = size;
      if (wire::UnpackIndirect(header.size_status)) {
        try {
          delivered =
              co_await CompleteIndirect(land_off(slot), size, out, "zero-copy entry fetch");
        } catch (...) {
          FreeSlot(slot);
          throw;
        }
      } else {
        client_.ReadBytes(land_off(slot) + kHeaderBytes, out.subspan(0, size));
      }
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      client_busy_.AddBusy(options_.reply_poll_cpu_ns);
      FinishReplyCall(header, cs.breaker_epoch);
      FreeSlot(slot);
      co_return delivered;
    }
    client_busy_.AddBusy(options_.reply_poll_cpu_ns);
    if (cs.deadline != 0 && engine_.now() >= cs.deadline) {
      if (check::FabricChecker* chk = fabric_->checker()) {
        chk->OnClientRecvDone(this);
      }
      FreeSlot(slot);
      throw DeadlineExceeded("rfp channel: call deadline exceeded awaiting reply");
    }
    co_await engine_.Sleep(options_.reply_poll_interval_ns);
  }
}

sim::Task<void> Channel::ReissueRequestSlot(int slot) {
  ClientSlot& cs = cslot(slot);
  ++stats_.reissues;
  if (++seq_ == 0) {
    ++seq_;  // 0 stays reserved for "never used"
  }
  cs.seq = seq_;
  cs.landing_ready = false;
  RequestHeader header;
  header.size_status = wire::PackRequestSizeStatus(cs.req_bytes, true, request_epoch_);
  header.seq = cs.seq;
  header.mode = static_cast<uint8_t>(mode_);
  header.slot = static_cast<uint8_t>(slot);
  header.deadline_ns = static_cast<uint64_t>(cs.deadline);
  client_.Store(req_off(slot), header);  // the payload is still staged
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(client_.remote_key().rkey, client_.abs(req_off(slot)), kReqHeaderBytes);
  }
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "reissue", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  co_await RcOp(/*from_client=*/true, /*is_read=*/false, req_off(slot), req_off(slot),
                kReqHeaderBytes + cs.req_bytes, "request reissue");
  ++stats_.recovery_request_writes;
}

bool Channel::SlotChecksumOk(int slot, uint32_t size) const {
  const uint64_t stored =
      client_.Load<uint64_t>(land_off(slot) + kHeaderBytes + size);
  const std::span<const std::byte> payload =
      client_.bytes().subspan(land_off(slot) + kHeaderBytes, size);
  return stored == wire::Checksum64(payload, cslot(slot).seq);
}

void Channel::FreeSlot(int slot) {
  ClientSlot& cs = cslot(slot);
  if (cs.state == ClientSlot::State::kPosted) {
    --posted_count_;
  } else if (cs.state == ClientSlot::State::kStaged) {
    --staged_count_;
  }
  cs = ClientSlot{};
}

bool Channel::TryServerRecvSlot(std::span<std::byte> out, size_t* size) {
  for (int i = 0; i < options_.window; ++i) {
    const int s = (recv_rr_ + i) % options_.window;
    const RequestHeader header = server_.Load<RequestHeader>(req_off(s));
    if (!wire::UnpackStatus(header.size_status) || header.slot != s ||
        header.seq == sslot(s).last_recv_seq) {
      continue;
    }
    const uint32_t payload = wire::UnpackRequestSize(header.size_status);
    if (payload > out.size()) {
      throw std::length_error("rfp channel: request larger than server buffer");
    }
    if (check::FabricChecker* chk = fabric_->checker()) {
      chk->OnAccept(check::ViolationKind::kRaceRecvStore, server_.remote_key().rkey,
                    server_.abs(req_off(s)), kReqHeaderBytes + payload, 0, "server recv");
    }
    server_.ReadBytes(req_off(s) + kReqHeaderBytes, out.subspan(0, payload));
    *size = payload;
    ServerSlot& ss = sslot(s);
    // A new request on this slot proves its previous response was consumed:
    // release the zero-copy entry pinned for it, if any.
    ss.pin.reset();
    ss.last_recv_seq = header.seq;
    ss.recv_time = engine_.now();
    last_recv_slot_ = s;
    last_recv_deadline_ns_ = header.deadline_ns;  // mirror for last_request_deadline_ns()
    last_recv_epoch_ = wire::UnpackRequestEpoch(header.size_status);
    recv_rr_ = (s + 1) % options_.window;
    return true;
  }
  return false;
}

sim::Task<void> Channel::ServerSendSlot(std::span<const std::byte> msg) {
  const int s = last_recv_slot_;
  ServerSlot& ss = sslot(s);
  ss.pin.reset();  // a superseding send releases any pinned entry
  const size_t off = land_off(s);
  ResponseHeader header;
  header.size_status = wire::PackSizeStatus(static_cast<uint32_t>(msg.size()), true);
  header.time_us = SaturateTimeUs(engine_.now() - ss.recv_time);
  header.seq = ss.last_recv_seq;
  check::FabricChecker* chk = fabric_->checker();
  const uint32_t rkey = server_.remote_key().rkey;
  // Same publication order as the scalar path: payload, checksum trailer,
  // header last (docs/static_analysis.md).
  server_.WriteBytes(off + kHeaderBytes, msg);
  if (chk != nullptr) {
    chk->OnCpuStore(rkey, server_.abs(off + kHeaderBytes), msg.size());
  }
  if (options_.checksum_responses) {
    server_.Store(off + kHeaderBytes + msg.size(), wire::Checksum64(msg, ss.last_recv_seq));
    if (chk != nullptr) {
      chk->OnCpuStore(rkey, server_.abs(off + kHeaderBytes + msg.size()), kChecksumBytes);
    }
  }
  server_.Store(off, header);
  if (chk != nullptr) {
    chk->OnCpuStore(rkey, server_.abs(off), kHeaderBytes);
    chk->OnPublish(rkey, server_.abs(off), kHeaderBytes + msg.size() + ChecksumBytes());
  }
  ss.last_resp_seq = ss.last_recv_seq;
  ss.last_resp_size = static_cast<uint32_t>(msg.size());
  ss.last_resp_busy = false;
  ss.response_pushed = false;
  if (!defer_server_pushes_ && server_visible_mode() == Mode::kServerReply) {
    co_await PushReplySlot(s);
  }
}

sim::Task<void> Channel::ServerSendBusySlot(BusyReason reason, uint16_t retry_after_us) {
  const int s = last_recv_slot_;
  ServerSlot& ss = sslot(s);
  ss.pin.reset();  // a superseding send releases any pinned entry
  const size_t off = land_off(s);
  ResponseHeader header;
  header.size_status = wire::PackBusy(reason);
  header.time_us = retry_after_us;
  header.seq = ss.last_recv_seq;
  const uint32_t rkey = server_.remote_key().rkey;
  // Header-only single-store publication, as in the scalar path.
  server_.Store(off, header);
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(rkey, server_.abs(off), kHeaderBytes);
    chk->OnPublish(rkey, server_.abs(off), kHeaderBytes);
  }
  if (reason == BusyReason::kAdmission) {
    ++stats_.shed_admission;
  } else {
    ++stats_.shed_deadline;
  }
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp",
                   reason == BusyReason::kAdmission ? "shed_admission" : "shed_deadline",
                   reinterpret_cast<uint64_t>(this), engine_.now());
  }
  ss.last_resp_seq = ss.last_recv_seq;
  ss.last_resp_size = 0;
  ss.last_resp_busy = true;
  ss.response_pushed = false;
  if (!defer_server_pushes_ && server_visible_mode() == Mode::kServerReply) {
    co_await PushReplySlot(s);
  }
}

sim::Task<void> Channel::ServerSendRedirectSlot(uint32_t epoch, uint16_t leader_hint) {
  const int s = last_recv_slot_;
  ServerSlot& ss = sslot(s);
  ss.pin.reset();  // a superseding send releases any pinned entry
  const size_t off = land_off(s);
  ResponseHeader header;
  header.size_status = wire::PackRedirect(epoch);
  header.time_us = leader_hint;
  header.seq = ss.last_recv_seq;
  const uint32_t rkey = server_.remote_key().rkey;
  // Header-only single-store publication, as in the scalar path.
  server_.Store(off, header);
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnCpuStore(rkey, server_.abs(off), kHeaderBytes);
    chk->OnPublish(rkey, server_.abs(off), kHeaderBytes);
  }
  ++stats_.shed_redirect;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "shed_redirect", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  ss.last_resp_seq = ss.last_recv_seq;
  ss.last_resp_size = 0;
  ss.last_resp_busy = true;  // header-only, like BUSY, for resend/flush sizing
  ss.response_pushed = false;
  if (!defer_server_pushes_ && server_visible_mode() == Mode::kServerReply) {
    co_await PushReplySlot(s);
  }
}

sim::Task<void> Channel::PushReplySlot(int slot) {
  ServerSlot& ss = sslot(slot);
  const uint32_t len =
      ss.last_resp_busy ? kHeaderBytes : kHeaderBytes + ss.last_resp_size + ChecksumBytes();
  co_await RcOp(/*from_client=*/false, /*is_read=*/false, land_off(slot), land_off(slot), len,
                "reply push");
  ss.response_pushed = true;
  ++stats_.reply_pushes;
}

sim::Task<std::vector<rdma::WorkCompletion>> Channel::RcBatch(bool from_client,
                                                              const std::vector<BatchOp>& ops,
                                                              const char* what) {
  std::vector<rdma::WorkCompletion> out(ops.size());
  if (ops.empty()) {
    co_return out;
  }
  std::vector<char> done(ops.size(), 0);
  size_t remaining = ops.size();
  for (int attempt = 0; remaining > 0; ++attempt) {
    // Re-resolve the QP each attempt: a reconnect replaces it. Offsets in
    // `ops` are ring-relative; the pooled span base is applied here.
    rdma::QueuePair* qp = from_client ? client_qp_ : server_qp_;
    const RingView& local = from_client ? client_ : server_;
    const RingView& remote = from_client ? server_ : client_;
    size_t posted = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (done[i]) {
        continue;
      }
      const BatchOp& op = ops[i];
      // Every WR after the first rides the leader's doorbell at the batched
      // marginal issue cost (see rdma::NicConfig::outbound_batch_marginal_ns).
      if (op.is_read) {
        qp->PostRead(i, *local.mr, local.abs(op.local_off), remote.remote_key(),
                     remote.abs(op.remote_off), op.len,
                     /*batch_follower=*/posted > 0);
      } else {
        qp->PostWrite(i, *local.mr, local.abs(op.local_off), remote.remote_key(),
                      remote.abs(op.remote_off), op.len,
                      /*batch_follower=*/posted > 0);
      }
      ++posted;
    }
    ++stats_.doorbell_batches;
    stats_.batch_occupancy.Record(static_cast<int64_t>(posted));
    stats_.batched_ops += posted - 1;
    bool qp_error = false;
    for (size_t c = 0; c < posted; ++c) {
      const rdma::WorkCompletion wc = co_await qp->send_cq()->Wait();
      out[wc.wr_id] = wc;
      if (wc.status == rdma::WcStatus::kQpError) {
        qp_error = true;
        continue;
      }
      CheckOk(wc, what);
      done[wc.wr_id] = 1;
      --remaining;
    }
    if (remaining == 0) {
      break;
    }
    if (!qp_error || attempt >= options_.max_reconnect_attempts) {
      for (size_t i = 0; i < ops.size(); ++i) {
        if (!done[i]) {
          CheckOk(out[i], what);  // throws, reporting the failure
        }
      }
    }
    co_await EnsureConnected(qp);
  }
  co_return out;
}

// ---- Overload protection (docs/overload.md) ----------------------------------

void Channel::RecordBusyResponse(const ResponseHeader& header, uint64_t sent_epoch) {
  ++stats_.busy_responses;
  calls_since_busy_ = 0;
  last_retry_after_us_ = header.time_us;
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", "busy_response", reinterpret_cast<uint64_t>(this), engine_.now());
  }
  RecordBreakerOutcome(true, sent_epoch);
}

void Channel::RecordBreakerOutcome(bool bad, uint64_t sent_epoch) {
  if (!options_.breaker_enabled) {
    return;
  }
  if (breaker_state_ == BreakerState::kHalfOpen) {
    if (sent_epoch != breaker_epoch_) {
      // A call sent before the breaker (last) opened, still draining its
      // retries — possibly across a reconnect. It is not the probe: its
      // stale verdict must neither re-open the breaker (double-counting
      // breaker_opens for one outage and discarding the real probe's
      // result) nor close it early.
      return;
    }
    // This outcome is the half-open probe's verdict.
    if (bad) {
      OpenBreaker();
    } else {
      breaker_state_ = BreakerState::kClosed;
      breaker_window_calls_ = 0;
      breaker_window_bad_ = 0;
      TraceBreaker("breaker_close");
    }
    return;
  }
  if (breaker_state_ == BreakerState::kOpen) {
    return;  // outcomes of the call in flight while opening don't re-vote
  }
  ++breaker_window_calls_;
  if (bad) {
    ++breaker_window_bad_;
  }
  if (breaker_window_calls_ >= options_.breaker_window) {
    if (static_cast<double>(breaker_window_bad_) >=
        options_.breaker_failure_rate * static_cast<double>(breaker_window_calls_)) {
      OpenBreaker();
    }
    breaker_window_calls_ = 0;
    breaker_window_bad_ = 0;
  }
}

void Channel::OpenBreaker() {
  breaker_state_ = BreakerState::kOpen;
  ++stats_.breaker_opens;
  ++breaker_epoch_;  // outcomes of calls sent before this instant are stale
  // Open for the configured interval, stretched to the server's latest
  // retry-after hint when that is larger, and jittered by +/-25% so a fleet
  // of breakers doesn't reclose in lockstep.
  const sim::Time hint_ns = static_cast<sim::Time>(last_retry_after_us_) * 1000;
  const sim::Time base = std::max<sim::Time>(options_.breaker_open_ns, hint_ns);
  const double jitter = 0.75 + 0.5 * rng_.NextDouble();
  breaker_open_until_ =
      engine_.now() + static_cast<sim::Time>(static_cast<double>(base) * jitter);
  breaker_window_calls_ = 0;
  breaker_window_bad_ = 0;
  TraceBreaker("breaker_open");
}

sim::Task<void> Channel::MaybeAwaitBreaker() {
  if (!options_.breaker_enabled || breaker_state_ != BreakerState::kOpen) {
    co_return;
  }
  if (breaker_open_until_ > engine_.now()) {
    co_await engine_.Sleep(breaker_open_until_ - engine_.now());
  }
  breaker_state_ = BreakerState::kHalfOpen;
  TraceBreaker("breaker_half_open");
}

sim::Time Channel::BusyRetryDelay(uint16_t hint_us, int nth_busy) {
  // Exponential from the server's hint (floored at 1 us), capped, jittered.
  sim::Time base = std::max<sim::Time>(static_cast<sim::Time>(hint_us) * 1000, 1000);
  const int shift = std::min(nth_busy - 1, 10);
  base = std::min<sim::Time>(base << shift, options_.busy_backoff_max_ns);
  const double jitter = 0.75 + 0.5 * rng_.NextDouble();
  sim::Time delay = static_cast<sim::Time>(static_cast<double>(base) * jitter);
  if (options_.breaker_enabled && breaker_state_ == BreakerState::kOpen) {
    // The breaker opened mid-call: honor the full open interval before the
    // in-flight call retries, like the gate in ClientSend would.
    delay = std::max<sim::Time>(delay, breaker_open_until_ - engine_.now());
  }
  return std::max<sim::Time>(delay, 1);
}

void Channel::TransferAttemptReads(uint64_t* attempt_reads) {
  stats_.fetch_reads -= *attempt_reads;
  stats_.recovery_fetch_reads += *attempt_reads;
  *attempt_reads = 0;
}

void Channel::TraceBreaker(const char* what) {
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->Instant("rfp", what, reinterpret_cast<uint64_t>(this), engine_.now());
  }
}

}  // namespace rfp
