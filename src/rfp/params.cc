#include "src/rfp/params.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/rdma/fabric.h"
#include "src/sim/engine.h"

namespace rfp {

double HardwareProfile::InboundMopsAt(uint32_t size) const {
  if (inbound_read.empty()) {
    return 0.0;
  }
  if (size <= inbound_read.front().size) {
    return inbound_read.front().mops;
  }
  if (size >= inbound_read.back().size) {
    return inbound_read.back().mops;
  }
  for (size_t i = 1; i < inbound_read.size(); ++i) {
    if (size <= inbound_read[i].size) {
      const IopsPoint& lo = inbound_read[i - 1];
      const IopsPoint& hi = inbound_read[i];
      const double t = static_cast<double>(size - lo.size) / static_cast<double>(hi.size - lo.size);
      return lo.mops + t * (hi.mops - lo.mops);
    }
  }
  return inbound_read.back().mops;
}

namespace {

struct LoopCounter {
  uint64_t ops = 0;
};

sim::Task<void> ProfileReadLoop(sim::Engine& eng, rdma::QueuePair* qp, rdma::MemoryRegion* local,
                                rdma::MemoryRegion* remote, uint32_t size, sim::Time deadline,
                                LoopCounter* out) {
  while (eng.now() < deadline) {
    rdma::WorkCompletion wc = co_await qp->Read(*local, 0, remote->remote_key(), 0, size);
    if (!wc.ok()) {
      throw std::runtime_error("profile read failed");
    }
    ++out->ops;
  }
}

sim::Task<void> ProfileWriteLoop(sim::Engine& eng, rdma::QueuePair* qp, rdma::MemoryRegion* local,
                                 rdma::MemoryRegion* remote, uint32_t size, sim::Time deadline,
                                 LoopCounter* out) {
  while (eng.now() < deadline) {
    rdma::WorkCompletion wc = co_await qp->Write(*local, 0, remote->remote_key(), 0, size);
    if (!wc.ok()) {
      throw std::runtime_error("profile write failed");
    }
    ++out->ops;
  }
}

// Measures saturated in-bound READ IOPS at one fetch size on a fresh fabric.
double MeasureInbound(const rdma::FabricConfig& config, const ProfileOptions& opts,
                      uint32_t size) {
  sim::Engine engine;
  rdma::Fabric fabric(engine, config);
  rdma::Node& server = fabric.AddNode("server");
  rdma::MemoryRegion* remote = server.RegisterMemory(16384, rdma::kAccessRemoteRead);
  std::vector<LoopCounter> counters(
      static_cast<size_t>(opts.client_nodes * opts.threads_per_node));
  size_t idx = 0;
  for (int n = 0; n < opts.client_nodes; ++n) {
    rdma::Node& client = fabric.AddNode("client" + std::to_string(n));
    for (int t = 0; t < opts.threads_per_node; ++t) {
      auto [cqp, sqp] = fabric.ConnectRc(client, server);
      (void)sqp;
      rdma::MemoryRegion* local = client.RegisterMemory(16384, rdma::kAccessLocal);
      engine.Spawn(ProfileReadLoop(engine, cqp, local, remote, size, opts.window,
                                   &counters[idx++]));
    }
  }
  engine.Run();
  uint64_t total = 0;
  for (const auto& c : counters) {
    total += c.ops;
  }
  return static_cast<double>(total) / sim::ToSeconds(opts.window) / 1e6;
}

double MeasureOutbound(const rdma::FabricConfig& config, const ProfileOptions& opts) {
  sim::Engine engine;
  rdma::Fabric fabric(engine, config);
  rdma::Node& server = fabric.AddNode("server");
  std::vector<LoopCounter> counters(static_cast<size_t>(opts.outbound_threads));
  for (int t = 0; t < opts.outbound_threads; ++t) {
    rdma::Node& client = fabric.AddNode("client" + std::to_string(t));
    rdma::MemoryRegion* remote = client.RegisterMemory(16384, rdma::kAccessRemoteWrite);
    auto [sqp, cqp] = fabric.ConnectRc(server, client);
    (void)cqp;
    rdma::MemoryRegion* local = server.RegisterMemory(16384, rdma::kAccessLocal);
    engine.Spawn(ProfileWriteLoop(engine, sqp, local, remote, 32, opts.window,
                                  &counters[static_cast<size_t>(t)]));
  }
  engine.Run();
  uint64_t total = 0;
  for (const auto& c : counters) {
    total += c.ops;
  }
  return static_cast<double>(total) / sim::ToSeconds(opts.window) / 1e6;
}

double MeasureFetchRtt(const rdma::FabricConfig& config) {
  sim::Engine engine;
  rdma::Fabric fabric(engine, config);
  rdma::Node& server = fabric.AddNode("server");
  rdma::Node& client = fabric.AddNode("client");
  rdma::MemoryRegion* remote = server.RegisterMemory(256, rdma::kAccessRemoteRead);
  rdma::MemoryRegion* local = client.RegisterMemory(256, rdma::kAccessLocal);
  auto [cqp, sqp] = fabric.ConnectRc(client, server);
  (void)sqp;
  LoopCounter counter;
  engine.Spawn(ProfileReadLoop(engine, cqp, local, remote, 32, sim::Micros(100), &counter));
  engine.Run();
  if (counter.ops == 0) {
    throw std::runtime_error("fetch RTT measurement produced no ops");
  }
  return static_cast<double>(engine.now()) / static_cast<double>(counter.ops);
}

}  // namespace

HardwareProfile MeasureProfile(const rdma::FabricConfig& config, const ProfileOptions& opts) {
  HardwareProfile profile;
  for (uint32_t size : opts.sizes) {
    profile.inbound_read.push_back(IopsPoint{size, MeasureInbound(config, opts, size)});
  }
  std::sort(profile.inbound_read.begin(), profile.inbound_read.end(),
            [](const IopsPoint& a, const IopsPoint& b) { return a.size < b.size; });
  profile.outbound_write_mops = MeasureOutbound(config, opts);
  profile.fetch_rtt_ns = MeasureFetchRtt(config);
  return profile;
}

uint32_t DetectL(const HardwareProfile& profile, double flat_tolerance) {
  if (profile.inbound_read.empty()) {
    throw std::invalid_argument("profile has no in-bound points");
  }
  const double peak = profile.inbound_read.front().mops;
  uint32_t l = profile.inbound_read.front().size;
  for (const IopsPoint& p : profile.inbound_read) {
    if (p.mops >= peak * (1.0 - flat_tolerance)) {
      l = p.size;
    } else {
      break;
    }
  }
  return l;
}

uint32_t DetectH(const HardwareProfile& profile, double advantage_margin) {
  if (profile.inbound_read.empty() || profile.outbound_write_mops <= 0.0) {
    throw std::invalid_argument("profile incomplete");
  }
  uint32_t h = profile.inbound_read.front().size;
  for (const IopsPoint& p : profile.inbound_read) {
    if (p.mops >= profile.outbound_write_mops * advantage_margin) {
      h = p.size;
    }
  }
  return h;
}

int DeriveRetryBound(const HardwareProfile& profile, int server_threads,
                     double gain_threshold) {
  if (profile.outbound_write_mops <= 0.0 || profile.fetch_rtt_ns <= 0.0) {
    throw std::invalid_argument("profile incomplete");
  }
  // P* in nanoseconds: the process time at which server-reply throughput
  // (server_threads / P) matches out-bound capacity within the gain margin.
  const double p_star_ns =
      static_cast<double>(server_threads) * 1000.0 /
      (profile.outbound_write_mops * (1.0 + gain_threshold));
  const int n = static_cast<int>(std::lround(p_star_ns / profile.fetch_rtt_ns));
  return std::max(1, n);
}

ParamChoice SelectParameters(const HardwareProfile& profile,
                             std::span<const uint32_t> result_sizes,
                             std::span<const sim::Time> process_times,
                             const SelectorConfig& cfg) {
  if (result_sizes.empty()) {
    throw std::invalid_argument("SelectParameters needs at least one result-size sample");
  }
  const uint32_t l = cfg.l != 0 ? cfg.l : DetectL(profile);
  const uint32_t h = std::max(cfg.h != 0 ? cfg.h : DetectH(profile), l);
  const int n = cfg.max_retry != 0 ? cfg.max_retry
                                   : DeriveRetryBound(profile, cfg.server_threads);

  ParamChoice best;
  best.predicted_score = -1.0;
  for (int r = 1; r <= n; ++r) {
    const double fetch_budget_ns = static_cast<double>(r) * profile.fetch_rtt_ns;
    for (uint32_t f = l; f <= h; f += cfg.size_step) {
      const double i_f = profile.InboundMopsAt(f);
      double total = 0.0;
      for (size_t i = 0; i < result_sizes.size(); ++i) {
        // Calls that outlive R fetch round trips complete via server-reply.
        if (!process_times.empty() &&
            static_cast<double>(process_times[i % process_times.size()]) > fetch_budget_ns) {
          total += profile.outbound_write_mops;
          continue;
        }
        total += (result_sizes[i] + cfg.header_bytes <= f) ? i_f : i_f / 2.0;
      }
      if (total > best.predicted_score) {
        best.predicted_score = total;
        best.retry_threshold = r;
        best.fetch_size = f;
      }
    }
  }
  return best;
}

void OnlineSampler::Record(uint32_t result_size, sim::Time process_ns) {
  ++observed_;
  if (sizes_.size() < capacity_) {
    sizes_.push_back(result_size);
    times_.push_back(process_ns);
    return;
  }
  // Vitter's algorithm R: keep each observation with probability k/n.
  const uint64_t slot = rng_.NextBounded(observed_);
  if (slot < capacity_) {
    sizes_[static_cast<size_t>(slot)] = result_size;
    times_[static_cast<size_t>(slot)] = process_ns;
  }
}

}  // namespace rfp
