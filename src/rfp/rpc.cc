#include "src/rfp/rpc.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"
#include "src/rfp/wire.h"

namespace rfp {

namespace {

constexpr size_t kRpcIdBytes = sizeof(uint16_t);

// Process-unique server ordinal for worker trace-track ids (see
// RpcServer::worker_track_id). Monotonic, never reused — unlike heap
// addresses, which the old this-pointer-derived ids leaned on.
uint64_t NextServerOrdinal() {
  static uint64_t next = 0;
  return ++next;
}

}  // namespace

RpcServer::RpcServer(rdma::Fabric& fabric, rdma::Node& node, int num_threads,
                     ServerOptions options)
    : fabric_(fabric), node_(node), options_(options),
      straggler_rng_(options.straggler_seed ^ node.id()),
      server_ordinal_(NextServerOrdinal()),
      threads_(static_cast<size_t>(num_threads)) {
  ValidateOptions(options_);
  for (ThreadState& state : threads_) {
    state.request_buf.resize(options_.max_message_bytes);
    state.response_buf.resize(options_.max_message_bytes);
    if (options_.multicore) {
      // Pin each worker to a core from the node's worker range (above the
      // NIC-station reservation); with more workers than cores, workers
      // share cores and contend through CpuSet::ComputeOn.
      state.core = node_.ReserveWorkerCore();
    }
  }
  if (sim::TraceSink* trace = fabric_.engine().trace_sink()) {
    for (int t = 0; t < num_threads; ++t) {
      trace->NameTrack(worker_track_id(t),
                       node_.name() + " rpc worker " + std::to_string(t));
    }
  }
}

RpcServer::~RpcServer() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("rfp.rpc.requests_served", {{"node", node_.name()}})->Add(requests_served_);
  if (thread_crashes_ > 0) {
    reg.GetCounter("rfp.rpc.thread_crashes", {{"node", node_.name()}})->Add(thread_crashes_);
  }
  // Overload counters register only when shedding actually happened, so
  // runs without overload keep their metric catalog unchanged.
  if (requests_shed_admission_ > 0) {
    reg.GetCounter("rfp.rpc.shed_admission", {{"node", node_.name()}})
        ->Add(requests_shed_admission_);
  }
  if (requests_shed_deadline_ > 0) {
    reg.GetCounter("rfp.rpc.shed_deadline", {{"node", node_.name()}})
        ->Add(requests_shed_deadline_);
  }
  if (overload_enters_ > 0) {
    reg.GetCounter("rfp.rpc.overload_enters", {{"node", node_.name()}})->Add(overload_enters_);
  }
  if (malformed_requests_ > 0) {
    reg.GetCounter("rfp.rpc.malformed_requests", {{"node", node_.name()}})
        ->Add(malformed_requests_);
  }
  if (channel_steals_ > 0) {
    reg.GetCounter("rfp.rpc.channel_steals", {{"node", node_.name()}})->Add(channel_steals_);
  }
  if (requests_shed_redirect_ > 0) {
    reg.GetCounter("rfp.rpc.shed_redirect", {{"node", node_.name()}})
        ->Add(requests_shed_redirect_);
  }
}

int RpcServer::channels_owned_by(int thread) const {
  int owned = 0;
  for (const ChannelEntry& entry : endpoints_) {
    if (entry.channel != nullptr && entry.owner == thread) {
      ++owned;
    }
  }
  return owned;
}

bool RpcServer::CloseChannel(Channel* channel) {
  for (ChannelEntry& entry : endpoints_) {
    if (entry.channel != channel || channel == nullptr) {
      continue;
    }
    if (entry.busy) {
      // A visit is suspended inside this channel; the sweep destroys it when
      // the visit ends (see ServeLoop).
      entry.closing = true;
      return true;
    }
    DestroyChannel(entry);
    return true;
  }
  return false;
}

void RpcServer::DestroyChannel(ChannelEntry& entry) {
  Channel* channel = entry.channel;
  // Tombstone first: sweeps skip null-channel entries, and the entry must
  // stay in place because suspended sweeps iterate endpoints_ by index.
  entry.channel = nullptr;
  entry.closing = false;
  for (auto it = owned_channels_.begin(); it != owned_channels_.end(); ++it) {
    if (it->get() == channel) {
      // ~Channel flushes its stats and returns the ring spans to the node
      // pools — no MR is deregistered (docs/memory.md).
      owned_channels_.erase(it);
      break;
    }
  }
  ++channels_closed_;
}

const AsyncHandler* RpcServer::FindHandler(uint16_t rpc_id) const {
  auto it = handlers_.find(rpc_id);
  return it == handlers_.end() ? nullptr : &it->second;
}

void RpcServer::RecordMalformedRequest(int thread_index, const char* why) {
  ++malformed_requests_;
  if (sim::TraceSink* trace = fabric_.engine().trace_sink()) {
    trace->Instant("rfp", std::string("malformed_request:") + why,
                   worker_track_id(thread_index), fabric_.engine().now());
  }
}

void RpcServer::StealChannel(ChannelEntry& entry, int thief, const char* why) {
  entry.owner = thief;
  ++channel_steals_;
  ++threads_[static_cast<size_t>(thief)].steals;
  if (sim::TraceSink* trace = fabric_.engine().trace_sink()) {
    trace->Instant("rfp", why, worker_track_id(thief), fabric_.engine().now());
  }
}

void RpcServer::CrashThread(int thread) {
  ThreadState& state = threads_[static_cast<size_t>(thread)];
  if (state.crashed) {
    return;
  }
  state.crashed = true;
  ++thread_crashes_;
  if (sim::TraceSink* trace = fabric_.engine().trace_sink()) {
    trace->Instant("fault", "server_thread_crash", worker_track_id(thread),
                   fabric_.engine().now());
  }
}

void RpcServer::RestartThread(int thread) {
  ThreadState& state = threads_[static_cast<size_t>(thread)];
  if (!state.crashed) {
    return;
  }
  state.crashed = false;
  if (sim::TraceSink* trace = fabric_.engine().trace_sink()) {
    trace->Instant("fault", "server_thread_restart", worker_track_id(thread),
                   fabric_.engine().now());
  }
}

namespace {

// Lifts a synchronous handler into the coroutine calling convention. The
// handler is copied into the frame as a parameter, so it cannot dangle.
sim::Task<HandlerResult> RunSyncHandler(Handler handler, HandlerContext ctx,
                                        std::span<const std::byte> request,
                                        std::span<std::byte> response) {
  co_return handler(ctx, request, response);
}

}  // namespace

void RpcServer::RegisterHandler(uint16_t rpc_id, Handler handler) {
  handlers_[rpc_id] = [h = std::move(handler)](const HandlerContext& ctx,
                                               std::span<const std::byte> request,
                                               std::span<std::byte> response) {
    return RunSyncHandler(h, ctx, request, response);
  };
}

void RpcServer::RegisterAsyncHandler(uint16_t rpc_id, AsyncHandler handler) {
  handlers_[rpc_id] = std::move(handler);
}

Channel* RpcServer::AcceptChannel(rdma::Node& client, const RfpOptions& options, int thread) {
  owned_channels_.push_back(std::make_unique<Channel>(fabric_, client, node_, options));
  Channel* channel = owned_channels_.back().get();
  ThreadState& state = threads_.at(static_cast<size_t>(thread));
  // Dispatch buffers are fixed-size (suspended handlers hold spans into
  // them), so every channel's messages must fit the server-wide bound.
  if (options.max_message_bytes > state.request_buf.size()) {
    throw std::invalid_argument(
        "rfp rpc: channel max_message_bytes exceeds ServerOptions.max_message_bytes");
  }
  if (options_.multicore && options_.batch_reply_publication) {
    channel->set_defer_server_pushes(true);
  }
  endpoints_.push_back(ChannelEntry{channel, thread, false});
  return channel;
}

void RpcServer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (int t = 0; t < num_threads(); ++t) {
    fabric_.engine().Spawn(ServeLoop(t));
  }
}

sim::Task<void> RpcServer::ServeLoop(int thread_index) {
  sim::Engine& engine = fabric_.engine();
  ThreadState& state = threads_[static_cast<size_t>(thread_index)];
  while (!stop_) {
    if (state.crashed) {
      // The worker is dead: it burns no poll CPU and serves nothing. Pending
      // request headers stay in the channels' request blocks (NIC and memory
      // are alive — only the core is gone) and are served after restart or,
      // under multicore work stealing, when a surviving worker claims them.
      co_await engine.Sleep(options_.idle_sleep_ns);
      continue;
    }
    bool any = false;
    size_t owned = 0;
    for (const ChannelEntry& entry : endpoints_) {
      if (entry.channel != nullptr && entry.owner == thread_index) {
        ++owned;
      }
    }
    // One scan over this worker's channels costs CPU whether or not
    // anything arrived (the server busy-polls, paper Section 4.1). Under
    // multicore the charge runs on the worker's pinned core, so workers
    // sharing a core queue behind each other.
    {
      const sim::Time poll_cpu =
          options_.poll_cpu_per_channel_ns * static_cast<sim::Time>(owned ? owned : 1);
      if (options_.multicore) {
        co_await node_.cpus().ComputeOn(state.core, poll_cpu);
      } else {
        co_await engine.Sleep(poll_cpu);
      }
    }
    // ---- Overload detector (docs/overload.md) ----------------------------
    // Estimated queued work for this sweep = pending requests x EWMA of the
    // measured per-request process time (floored at the dispatch cost).
    // Watermark hysteresis keeps the overloaded flag from flapping on a
    // single busy sweep. The pending peek reads the same header the sweep
    // poll already paid for, so it costs no extra CPU. The backlog-derived
    // retry hint is computed whenever ANY shedding path can fire — deadline
    // shedding is live without admission_control, and a hard-coded 1 us hint
    // there told clients to retry straight into the backlog.
    size_t pending = 0;
    for (const ChannelEntry& entry : endpoints_) {
      if (entry.channel != nullptr && entry.owner == thread_index) {
        pending += static_cast<size_t>(entry.channel->PendingRequests());
      }
    }
    const double per_request =
        std::max(state.process_ewma_ns, static_cast<double>(options_.dispatch_cpu_ns));
    const double est_ns = per_request * static_cast<double>(pending);
    const uint16_t retry_hint_us =
        static_cast<uint16_t>(std::clamp<double>(est_ns / 1000.0, 1.0, 65535.0));
    if (options_.admission_control) {
      if (!state.overloaded &&
          est_ns >= static_cast<double>(options_.overload_hi_watermark_ns)) {
        state.overloaded = true;
        ++overload_enters_;
        if (sim::TraceSink* trace = engine.trace_sink()) {
          trace->Instant("rfp", "overload_on", worker_track_id(thread_index), engine.now());
        }
      } else if (state.overloaded &&
                 est_ns <= static_cast<double>(options_.overload_lo_watermark_ns)) {
        state.overloaded = false;
        if (sim::TraceSink* trace = engine.trace_sink()) {
          trace->Instant("rfp", "overload_off", worker_track_id(thread_index), engine.now());
        }
      }
    }
    int admitted = 0;
    // Index-based iteration: AcceptChannel may push_back to this vector from
    // another actor while this loop is suspended mid-body, which would
    // invalidate range-for iterators. Ownership is re-checked per entry —
    // a steal can only retarget channels this visit has not fenced busy.
    for (size_t ci = 0; ci < endpoints_.size(); ++ci) {
      // The busy skip below and the fences in the steal scans are one
      // invariant with one mutant knob: unsafe_steal_busy_ models a
      // dispatcher that forgot visits suspend, so it both steals fenced
      // channels and sweeps a stolen channel whose old owner is still
      // mid-visit (tests/explore corpus pins the resulting double-serve).
      if (endpoints_[ci].channel == nullptr || endpoints_[ci].owner != thread_index ||
          (endpoints_[ci].busy && !unsafe_steal_busy_)) {
        continue;
      }
      Channel* channel = endpoints_[ci].channel;
      // Fence the visit: the body suspends (CPU charges, RDMA ops), and a
      // concurrent steal mid-visit would hand two workers the same channel.
      endpoints_[ci].busy = true;
      if (channel->NeedsReplyResend()) {
        co_await channel->MaybeResendAfterSwitch();
      }
      // A pipelined channel (RfpOptions::window > 1) can hold up to `window`
      // ready request slots; drain them all in this visit so one sweep
      // serves a whole doorbell batch. window == 1 runs the body at most
      // once and pays exactly one header poll, as before.
      for (int served_here = 0; served_here < channel->window(); ++served_here) {
        size_t request_size = 0;
        bool got = false;
        try {
          got = channel->TryServerRecv(state.request_buf, &request_size);
        } catch (const std::length_error&) {
          // A corrupted size field claims more bytes than the dispatch
          // buffer holds. Counted drop, not an actor-killing throw; skip
          // the channel for the rest of this sweep (the client's re-issue
          // rewrites the header).
          RecordMalformedRequest(thread_index, "oversized");
          break;
        }
        if (!got) {
          break;
        }
        any = true;
        // Deadline shedding: a request whose propagated deadline already
        // passed is dead on arrival — publish BUSY(deadline) instead of
        // burning handler time on a response the client will discard. Active
        // whenever the request carries a deadline, admission control or not.
        const uint64_t request_deadline = channel->last_request_deadline_ns();
        if (request_deadline != 0 && static_cast<uint64_t>(engine.now()) > request_deadline) {
          ++requests_shed_deadline_;
          if (options_.shed_cpu_ns > 0) {
            if (options_.multicore) {
              co_await node_.cpus().ComputeOn(state.core, options_.shed_cpu_ns);
            } else {
              co_await engine.Sleep(options_.shed_cpu_ns);
            }
          }
          co_await channel->ServerSendBusy(BusyReason::kDeadline, retry_hint_us);
          continue;  // a shed slot still leaves the rest of the window to serve
        }
        // Admission control: while overloaded, at most admission_budget
        // requests per sweep run handlers; the rest are shed with a first-
        // class BUSY instead of silently aging in the request blocks.
        if (options_.admission_control && state.overloaded &&
            admitted >= options_.admission_budget) {
          ++requests_shed_admission_;
          if (options_.shed_cpu_ns > 0) {
            if (options_.multicore) {
              co_await node_.cpus().ComputeOn(state.core, options_.shed_cpu_ns);
            } else {
              co_await engine.Sleep(options_.shed_cpu_ns);
            }
          }
          co_await channel->ServerSendBusy(BusyReason::kAdmission, retry_hint_us);
          continue;
        }
        ++admitted;
        if (request_size < kRpcIdBytes) {
          // Runt request: shorter than the rpc id. Count and serve on — a
          // malformed frame must not kill the sweep actor.
          RecordMalformedRequest(thread_index, "runt");
          continue;
        }
        uint16_t rpc_id = 0;
        std::memcpy(&rpc_id, state.request_buf.data(), kRpcIdBytes);
        // Replication epoch gate: a gated request from the wrong epoch — or
        // any gated request while this node is not serving — is redirected,
        // never dispatched. This is what fences a restarted old primary
        // (docs/replication.md): its clients learn the promotion from the
        // redirect and re-resolve the leader.
        if (!gated_rpcs_.empty() && gated_rpcs_.count(rpc_id) != 0 &&
            (!repl_serving_ || channel->last_request_epoch() != repl_epoch_)) {
          ++requests_shed_redirect_;
          if (sim::TraceSink* trace = engine.trace_sink()) {
            trace->Instant("repl", "redirect", worker_track_id(thread_index), engine.now());
          }
          co_await channel->ServerSendRedirect(repl_epoch_, repl_leader_hint_);
          continue;
        }
        auto it = handlers_.find(rpc_id);
        if (it == handlers_.end()) {
          RecordMalformedRequest(thread_index, "unknown_rpc");
          continue;
        }
        const std::span<const std::byte> payload(state.request_buf.data() + kRpcIdBytes,
                                                 request_size - kRpcIdBytes);
        const HandlerContext ctx{thread_index};
        const HandlerResult result = co_await it->second(ctx, payload, state.response_buf);
        // Unpack/dispatch/pack CPU plus the handler's declared process time
        // elapse before the response is published, so the response header's
        // time field reports the true per-request latency on the server. For
        // a zero-copy result response_size counts only the staged prefix, so
        // the pack cost naturally excludes the value — it never crosses the
        // server's CPU, which is the point of the indirect path
        // (docs/memory.md).
        const double copy_cost = options_.copy_cpu_ns_per_byte *
                                 static_cast<double>(request_size + result.response_size);
        sim::Time process = options_.dispatch_cpu_ns + static_cast<sim::Time>(copy_cost) +
                            result.process_ns;
        if (options_.straggler_prob > 0.0 &&
            straggler_rng_.NextBernoulli(options_.straggler_prob)) {
          process += options_.straggler_extra_ns;
        }
        if (options_.multicore) {
          co_await node_.cpus().ComputeOn(state.core, process);
        } else {
          co_await engine.Sleep(process);
        }
        {
          // Feed the measured process time into the detector's EWMA. Updated
          // unconditionally: the retry hint above needs it even when the
          // watermark machine (admission_control) is off.
          const double alpha = options_.process_ewma_alpha;
          state.process_ewma_ns =
              state.process_ewma_ns == 0.0
                  ? static_cast<double>(process)
                  : alpha * static_cast<double>(process) + (1.0 - alpha) * state.process_ewma_ns;
        }
        if (result.zero_copy.valid()) {
          co_await channel->ServerSendZeroCopy(
              std::span<const std::byte>(state.response_buf.data(), result.response_size),
              result.zero_copy);
        } else {
          co_await channel->ServerSend(
              std::span<const std::byte>(state.response_buf.data(), result.response_size));
        }
        ++state.served;
        ++requests_served_;
      }
      if (options_.multicore && options_.batch_reply_publication) {
        // Publish every slot this visit completed in one doorbell batch
        // (reply mode only; fetch-mode responses are already local stores).
        co_await channel->FlushServerPushes();
      }
      endpoints_[ci].busy = false;
      if (endpoints_[ci].closing) {
        // A CloseChannel raced this visit; destroy now that the visit's
        // spans into the channel are dead.
        DestroyChannel(endpoints_[ci]);
      }
    }
    // ---- Work stealing (docs/multicore.md) -------------------------------
    // Between sweeps, claim channels stranded on crashed workers; when this
    // sweep found nothing at all, also relieve a backlogged live worker.
    // Bounded per sweep so ownership churn stays low, and never across a
    // busy fence. Synchronous (no co_await), so the scan is atomic in the
    // cooperative scheduler.
    if (options_.multicore && options_.work_stealing) {
      int budget = options_.max_steals_per_sweep;
      for (size_t ci = 0; ci < endpoints_.size() && budget > 0; ++ci) {
        ChannelEntry& entry = endpoints_[ci];
        if (entry.channel == nullptr || entry.owner == thread_index ||
            (entry.busy && !unsafe_steal_busy_)) {
          continue;
        }
        if (!threads_[static_cast<size_t>(entry.owner)].crashed) {
          continue;
        }
        StealChannel(entry, thread_index, "orphan_claim");
        --budget;
      }
      if (!any) {
        for (size_t ci = 0; ci < endpoints_.size() && budget > 0; ++ci) {
          ChannelEntry& entry = endpoints_[ci];
          if (entry.channel == nullptr || entry.owner == thread_index ||
              (entry.busy && !unsafe_steal_busy_) ||
              threads_[static_cast<size_t>(entry.owner)].crashed) {
            continue;
          }
          if (entry.channel->PendingRequests() < options_.steal_min_backlog) {
            continue;
          }
          // A load steal must strictly improve ownership balance, so two
          // idle workers cannot ping-pong a channel between their sweep
          // phases forever (each re-stealing before the new owner's visit):
          // migration is monotone toward balance and then stops.
          if (channels_owned_by(entry.owner) <= channels_owned_by(thread_index) + 1) {
            continue;
          }
          StealChannel(entry, thread_index, "channel_steal");
          --budget;
        }
      }
    }
    if (!any) {
      co_await engine.Sleep(options_.idle_sleep_ns);
    }
  }
}

RpcClient::RpcClient(Channel* channel) : channel_(channel) {
  scratch_.resize(kRpcIdBytes + channel->options().max_message_bytes);
  submit_start_.resize(static_cast<size_t>(channel->window()), 0);
}

RpcClient::~RpcClient() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"client", channel_->client_node()->name()}};
  reg.GetCounter("rfp.rpc.client_calls", labels)->Add(calls_);
  reg.GetHistogram("rfp.rpc.call_latency_ns", labels)->Merge(latency_);
}

sim::Task<size_t> RpcClient::Call(uint16_t rpc_id, std::span<const std::byte> request,
                                  std::span<std::byte> response, const CallOptions& options) {
  const sim::Time start = channel_->client_node()->fabric()->engine().now();
  std::memcpy(scratch_.data(), &rpc_id, kRpcIdBytes);
  // CopyBytes is the checked copy: an empty request (null span data pointer)
  // is a valid no-op, and an overlap throws instead of invoking UB.
  rdma::CopyBytes(std::span<std::byte>(scratch_.data() + kRpcIdBytes, request.size()), request);
  const Channel::CallHandle handle = co_await channel_->SubmitCall(
      std::span<const std::byte>(scratch_.data(), kRpcIdBytes + request.size()), options);
  const size_t n = co_await channel_->AwaitCall(handle, response);
  ++calls_;
  latency_.Record(channel_->client_node()->fabric()->engine().now() - start);
  co_return n;
}

sim::Task<Channel::CallHandle> RpcClient::SubmitCall(uint16_t rpc_id,
                                                     std::span<const std::byte> request,
                                                     const CallOptions& options) {
  const sim::Time start = channel_->client_node()->fabric()->engine().now();
  std::memcpy(scratch_.data(), &rpc_id, kRpcIdBytes);
  // CopyBytes is the checked copy: an empty request (null span data pointer)
  // is a valid no-op, and an overlap throws instead of invoking UB.
  rdma::CopyBytes(std::span<std::byte>(scratch_.data() + kRpcIdBytes, request.size()), request);
  // Channel::SubmitCall stages the bytes into the call's slot before it
  // returns, so scratch_ is immediately reusable by the next submit.
  const Channel::CallHandle handle = co_await channel_->SubmitCall(
      std::span<const std::byte>(scratch_.data(), kRpcIdBytes + request.size()), options);
  submit_start_[static_cast<size_t>(handle.slot)] = start;
  co_return handle;
}

sim::Task<size_t> RpcClient::AwaitCall(Channel::CallHandle handle,
                                       std::span<std::byte> response) {
  const size_t n = co_await channel_->AwaitCall(handle, response);
  ++calls_;
  latency_.Record(channel_->client_node()->fabric()->engine().now() -
                  submit_start_[static_cast<size_t>(handle.slot)]);
  co_return n;
}

}  // namespace rfp
