// The RFP channel: one client thread <-> one server thread message pipe
// implementing the paper's four primitives (Table 2) and the hybrid
// remote-fetch / server-reply state machine (Section 3.2).
//
// Data path (paper Fig 7):
//
//   client_send  — RDMA WRITE of [RequestHeader|payload] into the server's
//                  request block (in-bound at the server).
//   server_recv  — the server thread polls its local request block.
//   server_send  — the server stores [ResponseHeader|payload] into its local
//                  response block; in server-reply mode it additionally RDMA
//                  WRITEs the response to the client (out-bound).
//   client_recv  — in remote-fetch mode the client repeatedly RDMA READs
//                  `fetch_size` bytes of the response block until the header
//                  matches its call sequence (in-bound at the server); if the
//                  response exceeds the fetch size, one more READ collects
//                  the remainder. In server-reply mode the client polls its
//                  local landing buffer.
//
// Mode machine: after `slow_calls_before_switch` consecutive calls exceed
// `retry_threshold` failed fetches, the client flips the channel to
// server-reply (a one-byte RDMA WRITE updates the server-visible mode flag
// mid-call). While replying, the server stamps its process time into each
// response header; once `fast_calls_before_switch_back` consecutive replies
// report a process time at or below `switch_back_us`, the client returns to
// remote fetching (the next request header carries the new mode).

#ifndef SRC_RFP_CHANNEL_H_
#define SRC_RFP_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/mem/pool.h"
#include "src/rdma/fabric.h"
#include "src/rdma/memory.h"
#include "src/rdma/qp.h"
#include "src/rfp/options.h"
#include "src/rfp/wire.h"
#include "src/sim/cpu.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace rfp {

// Thrown by ClientRecv when the call's propagated deadline expired: either
// the server shed the request with BUSY(deadline), or the deadline passed
// while the client was backing off from BUSY(admission). The request was not
// (and will not be) executed past the deadline.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by ClientRecv/AwaitCall when the server answered with a REDIRECT
// header: the server is not (or no longer) the primary for the epoch the
// request carried. The request was not executed. `server_epoch` is the
// rejecting server's current epoch and `leader_hint` the node id it believes
// is the leader; a replication-aware client re-resolves the leader (see
// repl::Client) and re-issues under the new epoch.
class Redirected : public std::runtime_error {
 public:
  Redirected(uint32_t server_epoch, uint16_t leader_hint)
      : std::runtime_error("rfp channel: redirected (stale epoch / not the primary)"),
        server_epoch_(server_epoch),
        leader_hint_(leader_hint) {}

  uint32_t server_epoch() const { return server_epoch_; }
  uint16_t leader_hint() const { return leader_hint_; }

 private:
  uint32_t server_epoch_;
  uint16_t leader_hint_;
};

// A response value that lives in the server's registered memory (a mem::Pool
// slab entry owned by a store) instead of the response ring. ServerSendZeroCopy
// publishes a descriptor pointing at it; the client fetches the value with one
// RDMA READ straight from the entry, so the server never copies value bytes.
//
// Lifetime contract (docs/memory.md): `pin` must keep the entry bytes from
// being overwritten or reused until the channel releases it — on the next
// request received on the same slot (which proves the client consumed the
// response), on a superseding send, or at channel destruction. A store that
// mutates a pinned entry in place violates the contract; under RFP_CHECK the
// race detector reports it as race.fetch_store on the entry range.
struct ZeroCopyRef {
  uint32_t rkey = 0;   // registered region holding the value
  size_t offset = 0;   // absolute offset of the value within that region
  uint32_t len = 0;    // value bytes
  uint32_t epoch = 0;  // entry reuse epoch (descriptive; travels to the client)
  std::shared_ptr<const void> pin;  // keeps the entry alive until released

  bool valid() const { return rkey != 0; }
};

class Channel {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t request_writes = 0;   // client_send RDMA WRITEs
    uint64_t fetch_reads = 0;      // all client_recv RDMA READs
    uint64_t failed_fetches = 0;   // READs that found no matching response
    uint64_t extra_fetches = 0;    // second READs because size > fetch size
    uint64_t reply_pushes = 0;     // server out-bound reply WRITEs
    uint64_t switches_to_reply = 0;
    uint64_t switches_to_fetch = 0;
    // Fault-recovery events (all zero unless faults were injected or the
    // fault-tolerance options are enabled; see docs/fault_injection.md).
    uint64_t reconnects = 0;       // RC pair replaced after a QP error
    uint64_t reissues = 0;         // request re-sent (timeout, corruption, busy)
    uint64_t corrupt_fetches = 0;  // checksum-mismatching responses observed
    uint64_t fetch_timeouts = 0;   // calls whose fetch deadline expired
    // Recovery traffic, accounted separately from the primary-path counters
    // above so RoundTripsPerCall keeps the paper's Table-3 semantics (it
    // used to fold re-issued WRITEs and their abandoned fetch READs into the
    // numerator, inflating the metric whenever fault tolerance was active).
    // Invariant: request_writes counts exactly one WRITE per issued call.
    uint64_t recovery_request_writes = 0;  // re-issued request WRITEs
    uint64_t recovery_fetch_reads = 0;     // READs of attempts abandoned by a re-issue
    // Overload-protection events (docs/overload.md).
    uint64_t busy_responses = 0;  // BUSY shed notices observed by the client
    uint64_t shed_admission = 0;  // requests shed by admission control (server side)
    uint64_t shed_deadline = 0;   // requests shed as already expired (server side)
    uint64_t breaker_opens = 0;   // circuit-breaker closed/half-open -> open
    // Replication / failover (docs/replication.md).
    uint64_t redirects = 0;       // REDIRECT responses observed by the client
    uint64_t shed_redirect = 0;   // requests rejected with REDIRECT (server side)
    // Pipelining (docs/pipelining.md; all zero on window=1 channels).
    uint64_t doorbell_batches = 0;  // posting sweeps (one leader doorbell each)
    uint64_t batched_ops = 0;       // follower WRs that rode a leader's doorbell
    // Coalesced fetching (docs/multicore.md; zero unless coalesced_fetch).
    uint64_t coalesced_fetches = 0;  // spanning READs issued by fetch sweeps
    uint64_t coalesced_slots = 0;    // pending slots those spans covered
    // Zero-copy GET (docs/memory.md; zero unless ServerSendZeroCopy is used).
    uint64_t zero_copy_sends = 0;      // indirect descriptors published
    uint64_t zero_copy_fetches = 0;    // client entry READs issued
    uint64_t zero_copy_bytes = 0;      // value bytes moved without a server copy
    uint64_t zero_copy_fallbacks = 0;  // sends materialized via the copy path
                                       // (client was in server-reply mode)
    // Failed-retry count per completed remote-fetch call (Table 3).
    sim::Histogram retries_per_call;
    // Outstanding calls (posted + staged) sampled at each SubmitCall, and
    // WRs per doorbell batch (window=1 channels record neither).
    sim::Histogram submit_window;
    sim::Histogram batch_occupancy;

    // Average RDMA round trips needed per completed call (paper Section 4.3
    // reports 2.005 for Jakiro). Counts only primary-path traffic; recovery
    // traffic (re-issues and the fetches of abandoned attempts) is reported
    // by RecoveryRoundTripsPerCall. Fetch retries that resolve *within* an
    // attempt — including the ones a timeout-driven mode switch abandons —
    // stay in the numerator, as in the paper's own retry accounting.
    double RoundTripsPerCall() const {
      if (calls == 0) {
        return 0.0;
      }
      return static_cast<double>(request_writes + fetch_reads + reply_pushes) /
             static_cast<double>(calls);
    }

    // Extra round trips per call spent on fault/overload recovery.
    double RecoveryRoundTripsPerCall() const {
      if (calls == 0) {
        return 0.0;
      }
      return static_cast<double>(recovery_request_writes + recovery_fetch_reads) /
             static_cast<double>(calls);
    }
  };

  // Client circuit breaker state (docs/overload.md): kClosed passes calls
  // through, kOpen delays the next call until the open interval elapses,
  // kHalfOpen lets exactly one probe call decide between close and reopen.
  enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

  // Builds a channel between `client` and `server`: the request/response
  // rings on the server and the staging/landing rings on the client are
  // drawn from the nodes' shared mem::Pools (docs/memory.md) — setup and
  // teardown recycle registered memory instead of (de)registering MRs — and
  // connected by a dedicated RC queue pair.
  Channel(rdma::Fabric& fabric, rdma::Node& client, rdma::Node& server,
          const RfpOptions& options);

  // Flushes this channel's Stats into the default metrics registry, labeled
  // {client, server} by node name (channels with equal labels aggregate).
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // ---- Client-side primitives ----------------------------------------------

  // Sends one request message. Pairs 1:1 with a following ClientRecv.
  // `deadline_ns` is an absolute virtual-time deadline propagated to the
  // server in the request header; 0 falls back to now + call_deadline_ns
  // when that option is set (else no deadline). With the breaker open, the
  // send first waits out the remaining open interval (half-open probe).
  sim::Task<void> ClientSend(std::span<const std::byte> msg, sim::Time deadline_ns = 0);

  // Receives the response for the last ClientSend into `out`; returns the
  // payload size. `out` must hold at least max_message_bytes. Throws
  // DeadlineExceeded when the call's deadline expired (see class above);
  // transparently backs off and re-issues on BUSY(admission).
  sim::Task<size_t> ClientRecv(std::span<std::byte> out);

  // ---- Pipelined call surface (docs/pipelining.md) -------------------------

  // Identifies one in-flight pipelined call: the request/response slot it
  // occupies and the wire sequence tag it was issued under.
  struct CallHandle {
    int slot = 0;
    uint16_t seq = 0;
  };

  // Stages one request into a free slot and returns its handle. On a
  // window=1 channel this is exactly ClientSend (the request is written
  // immediately); with window > 1 the request stays staged until the next
  // FlushCalls/AwaitCall, so a burst of submits coalesces into one
  // doorbell-batched posting sweep. Throws when all `window` slots hold
  // in-flight calls.
  sim::Task<CallHandle> SubmitCall(std::span<const std::byte> msg,
                                   const CallOptions& opts = {});

  // Posts every staged request in one doorbell batch (the first WRITE pays
  // the full out-bound issue cost, followers the batched marginal). No-op on
  // window=1 channels or when nothing is staged; AwaitCall flushes
  // implicitly.
  sim::Task<void> FlushCalls();

  // Completes the call identified by `handle` into `out`; returns the
  // payload size. Fetch sweeps piggyback READs for every other in-flight
  // slot onto the awaited slot's doorbell, so responses land regardless of
  // await order. Same failure semantics as ClientRecv (DeadlineExceeded,
  // BUSY re-issue, checksum re-issue, mode switching — the paradigm switch
  // stays channel-level).
  sim::Task<size_t> AwaitCall(CallHandle handle, std::span<std::byte> out);

  // Outstanding-call capacity of this channel (RfpOptions::window).
  int window() const { return options_.window; }

  // ---- Server-side primitives ----------------------------------------------

  // Non-consuming peek: true when a request is pending in the request block.
  // Sweep loops use it to estimate backlog before deciding admission.
  bool HasPendingRequest() const;

  // Pending (written but not yet consumed) requests across all slots; equals
  // HasPendingRequest() ? 1 : 0 on window=1 channels. Sweep loops use it to
  // estimate backlog on pipelined channels.
  int PendingRequests() const;

  // Non-blocking poll of the request block. On success copies the payload
  // into `out`, stores its size in `*size`, and returns true.
  bool TryServerRecv(std::span<std::byte> out, size_t* size);

  // Absolute deadline carried by the last request TryServerRecv returned
  // (0 = none). The server checks it before dispatching the handler.
  uint64_t last_request_deadline_ns() const { return last_recv_deadline_ns_; }

  // Replication epoch carried by the last request TryServerRecv returned
  // (0 = legacy / not replication-aware). A gated RpcServer compares it to
  // its own epoch before dispatching (docs/replication.md).
  uint32_t last_request_epoch() const { return last_recv_epoch_; }

  // Publishes the response for the last received request.
  sim::Task<void> ServerSend(std::span<const std::byte> msg);

  // Publishes a header-only BUSY response for the last received request
  // instead of serving it: the request was shed (admission budget exhausted
  // or deadline already expired). `retry_after_us` hints when the client
  // should retry.
  sim::Task<void> ServerSendBusy(BusyReason reason, uint16_t retry_after_us);

  // Publishes a header-only REDIRECT response for the last received request:
  // this server is not the primary for the request's epoch. `epoch` is the
  // server's current epoch, `leader_hint` the node id of the believed leader
  // (travels in time_us). The client-side call throws Redirected.
  sim::Task<void> ServerSendRedirect(uint32_t epoch, uint16_t leader_hint);

  // Publishes a zero-copy response for the last received request: `prefix`
  // bytes are staged in the response slot as usual, but the value stays in
  // the registered entry `ref` names — the client collects it with one RDMA
  // READ of (ref.rkey, ref.offset, ref.len). The channel holds ref.pin until
  // the response is provably consumed (see ZeroCopyRef). The client's
  // ClientRecv/AwaitCall returns prefix + value assembled in order, so
  // handlers swap ServerSend for this without changing the client. When the
  // client is in server-reply mode the value is materialized once and pushed
  // through the regular copy path (prefix+value must then fit
  // max_message_bytes).
  sim::Task<void> ServerSendZeroCopy(std::span<const std::byte> prefix,
                                     const ZeroCopyRef& ref);

  // True when a response was stored locally but never pushed while the
  // client is (now) in server-reply mode — the switch race. Cheap; sweep
  // loops use it to gate MaybeResendAfterSwitch. Checks every slot on a
  // pipelined channel.
  bool NeedsReplyResend() const;

  // Re-pushes the last response if the client switched to server-reply after
  // the response was stored locally (closing the switch race). Server sweep
  // loops call this when NeedsReplyResend() is true.
  sim::Task<void> MaybeResendAfterSwitch();

  // ---- Batched reply publication (docs/multicore.md) -----------------------

  // When set, ServerSend/ServerSendBusy store the response locally but skip
  // the immediate reply push even in server-reply mode; the sweep publishes
  // everything at the end of its channel visit via FlushServerPushes. The
  // NeedsReplyResend/MaybeResendAfterSwitch safety net still covers a crash
  // or switch that interleaves a visit.
  void set_defer_server_pushes(bool defer) { defer_server_pushes_ = defer; }

  // Pushes every stored-but-unpushed reply-mode response in one doorbell
  // batch (the first WRITE pays the full out-bound issue cost, followers the
  // batched marginal — the server-side mirror of the client posting batch).
  // No-op in remote-fetch mode (responses are local stores) or when nothing
  // is unpushed; a lone push goes out unbatched.
  sim::Task<void> FlushServerPushes();

  // ---- Introspection ---------------------------------------------------------

  Mode client_mode() const { return mode_; }
  // Mode as currently visible to the server (via the request-block flag).
  Mode server_visible_mode() const;
  BreakerState breaker_state() const { return breaker_state_; }
  const Stats& stats() const { return stats_; }
  // Retry-after hint (µs) carried by the last BUSY response this client
  // observed; backlog-derived by the server sweep (docs/overload.md).
  uint16_t last_retry_after_us() const { return last_retry_after_us_; }
  sim::BusyMeter& client_busy() { return client_busy_; }
  uint16_t last_server_time_us() const { return last_server_time_us_; }
  const RfpOptions& options() const { return options_; }

  // Adjusts F at runtime (used when the parameter selector re-tunes).
  void set_fetch_size(uint32_t f);

  // Replication epoch stamped into every request header this client issues
  // (bits 24-30 of size_status; 0 = legacy). Set by replication-aware
  // clients after resolving the leader; re-issues reuse the current value.
  void set_request_epoch(uint32_t epoch) { request_epoch_ = epoch & wire::kReqEpochMax; }
  uint32_t request_epoch() const { return request_epoch_; }

  // TEST ONLY (tests/explore corpus): drops the sequence-tag filter on
  // response acceptance, modelling a client that trusts any completed
  // response header. A late response from a superseded attempt (window
  // re-issue, crash re-issue) is then accepted as the current call's result;
  // the schedule explorer plus the linearizability oracle pin exactly that
  // bug. Never set in production paths.
  void set_unsafe_accept_stale_seq(bool unsafe) { unsafe_accept_stale_seq_ = unsafe; }

  // TEST ONLY (tests/explore corpus): disables the post-switch resend safety
  // net — NeedsReplyResend() reports nothing and MaybeResendAfterSwitch()
  // does nothing — modelling a server without the switch-race republish
  // (docs/overload.md). Schedules where the mode-switch WRITE lands after
  // the handler sampled the request block then strand the stored response.
  void set_unsafe_switch_race(bool unsafe) { unsafe_switch_race_ = unsafe; }

  rdma::Node* client_node() const { return client_node_; }
  rdma::Node* server_node() const { return server_node_; }

  // ---- Connection tier hooks (src/conn, docs/connections.md) ---------------

  // Severs the RC pair in place: both endpoints transition to the error
  // state, so every outstanding and future op on this channel completes with
  // a QP error, and the next client attempt takes the transparent reconnect
  // path (EnsureConnected + idempotent re-issue). Registered rings stay
  // untouched — a conn::ChannelCache eviction is therefore indistinguishable
  // from the QP failure the recovery machinery already handles.
  void Detach();

  // Registered bytes this channel pins across both nodes (the pool spans
  // backing its rings). conn::ChannelCache charges its byte capacity with
  // this.
  size_t registered_footprint_bytes() const { return server_span_.size + client_span_.size; }

  // Fault-injection targeting: the server-side region holding this channel's
  // [request block][response block] rings, and the offset of the response
  // ring within that (pool-shared) region. A corruption fault flips bytes at
  // rkey/offset (see fault::FaultPlan::CorruptRegion).
  uint32_t server_rkey() const { return server_.rkey(); }
  size_t request_offset() const { return server_.abs(0); }
  size_t response_offset() const { return server_.abs(resp_offset_); }
  size_t response_block_bytes() const { return block_bytes_; }

 private:
  bool adaptive() const { return options_.force_mode == RfpOptions::ForceMode::kAdaptive; }

  // The channel's view of one side's backing region. Rings live inside
  // pool-allocated spans of large shared arenas, so every ring offset the
  // protocol code computes is relative and shifts by `base` exactly at the
  // MR boundary: local/remote offsets of RC ops, raw loads/stores, and the
  // (rkey, offset) coordinates handed to the race checker (via abs()).
  struct RingView {
    rdma::MemoryRegion* mr = nullptr;
    size_t base = 0;

    uint32_t rkey() const { return mr->remote_key().rkey; }
    rdma::RemoteKey remote_key() const { return mr->remote_key(); }
    size_t abs(size_t off) const { return base + off; }
    template <typename T>
    T Load(size_t off) const {
      return mr->Load<T>(base + off);
    }
    template <typename T>
    void Store(size_t off, const T& value) {
      mr->Store<T>(base + off, value);
    }
    void WriteBytes(size_t off, std::span<const std::byte> src) {
      mr->WriteBytes(base + off, src);
    }
    void ReadBytes(size_t off, std::span<std::byte> dst) const {
      mr->ReadBytes(base + off, dst);
    }
    // Ring-relative whole view, so callers can subspan with ring offsets.
    std::span<const std::byte> bytes() const {
      return std::span<const std::byte>(mr->bytes()).subspan(base);
    }
  };

  // Slot layout: the server block is [req slot 0..W-1][resp slot 0..W-1] and
  // the client block mirrors it as [staging 0..W-1][landing 0..W-1]; W=1
  // degenerates to the paper's single request/response block pair.
  size_t req_off(int slot) const { return static_cast<size_t>(slot) * block_bytes_; }
  size_t land_off(int slot) const {
    return resp_offset_ + static_cast<size_t>(slot) * block_bytes_;
  }

  // Per-slot client call state, used only when window > 1 (window=1 calls
  // run the original scalar-state paths untouched).
  struct ClientSlot {
    enum class State : uint8_t { kFree, kStaged, kPosted };
    State state = State::kFree;
    uint16_t seq = 0;
    uint32_t req_bytes = 0;  // staged payload bytes, kept for re-issue
    sim::Time deadline = 0;  // absolute call deadline; 0 = none
    uint32_t fetch_override = 0;
    int failed = 0;              // failed fetches of the current attempt
    int reissues = 0;
    int corrupt = 0;
    int busy_streak = 0;
    uint64_t attempt_reads = 0;  // moved to recovery bucket on re-issue
    bool landing_ready = false;  // a matching response header landed
    uint64_t fetch_tick = 0;     // check_tick of the READ that landed it
    uint32_t fetched_len = 0;    // bytes that READ carried
    uint64_t breaker_epoch = 0;  // breaker epoch at submit (verdict filter)
  };

  // Per-slot server state, used only when window > 1.
  struct ServerSlot {
    uint16_t last_recv_seq = 0;
    uint16_t last_resp_seq = 0;
    bool response_pushed = true;
    sim::Time recv_time = 0;
    uint32_t last_resp_size = 0;
    bool last_resp_busy = false;
    // Zero-copy entry pin for this slot's outstanding response; released on
    // the next request received here or a superseding send.
    std::shared_ptr<const void> pin;
  };

  // One WR of a doorbell batch (see RcBatch).
  struct BatchOp {
    bool is_read = false;
    size_t local_off = 0;
    size_t remote_off = 0;
    uint32_t len = 0;
  };

  uint32_t EffectiveFetch(uint32_t override_f) const;
  void FreeSlot(int slot);
  // Posts all `ops` on the channel's RC pair in one doorbell batch (the
  // first WR pays the full issue cost, followers the batched marginal) and
  // collects their completions, reconnecting and re-posting unfinished ops
  // on a QP error. Returns completions indexed like `ops`.
  sim::Task<std::vector<rdma::WorkCompletion>> RcBatch(bool from_client,
                                                       const std::vector<BatchOp>& ops,
                                                       const char* what);
  // One batched fetch sweep: READs the awaited slot first (it leads the
  // doorbell), piggybacking READs for every other in-flight fetch-mode slot.
  sim::Task<void> FetchSweep(int primary);
  sim::Task<size_t> AwaitReplySlot(int slot, std::span<std::byte> out);
  sim::Task<void> ReissueRequestSlot(int slot);
  bool SlotChecksumOk(int slot, uint32_t size) const;
  bool TryServerRecvSlot(std::span<std::byte> out, size_t* size);
  sim::Task<void> ServerSendSlot(std::span<const std::byte> msg);
  sim::Task<void> ServerSendBusySlot(BusyReason reason, uint16_t retry_after_us);
  sim::Task<void> ServerSendRedirectSlot(uint32_t epoch, uint16_t leader_hint);
  sim::Task<void> PushReplySlot(int slot);
  // Stages the indirect descriptor + prefix into response slot `slot` with
  // the regular publication order and publishes the entry range. Shared by
  // the scalar and pipelined ServerSendZeroCopy paths.
  void StageIndirect(int slot, uint16_t seq, uint16_t time_us,
                     std::span<const std::byte> prefix, const ZeroCopyRef& ref);
  // Client side of an indirect response: parses the descriptor staged at
  // ring offset `land`, copies the prefix, fetches the entry with one READ
  // (into a pool bounce span — the value can exceed the landing block), and
  // assembles prefix+value into `out`. Returns the total payload size.
  sim::Task<size_t> CompleteIndirect(size_t land, uint32_t staged_size,
                                     std::span<std::byte> out, const char* what);
  // One client READ of a raw (rkey, absolute offset) target outside the
  // rings, with the same reconnect-and-retry contract as RcOp.
  sim::Task<rdma::WorkCompletion> FetchEntry(rdma::MemoryRegion& local_mr, size_t local_off,
                                             uint32_t rkey, size_t remote_off, uint32_t len,
                                             const char* what);

  ResponseHeader LandingHeader() const;
  // Flips the channel to server-reply and tells the server (1-byte WRITE).
  sim::Task<void> SwitchToReply();
  // Polls the local landing buffer until the reply for `seq_` arrives.
  sim::Task<size_t> AwaitReply(std::span<std::byte> out);
  // Books completion of a reply-mode call and evaluates switch-back.
  void FinishReplyCall(const ResponseHeader& header, uint64_t sent_epoch);
  // Pushes the response stored for `last_resp_seq_` to the client.
  sim::Task<void> PushReply();

  // ---- Fault recovery ------------------------------------------------------

  uint32_t ChecksumBytes() const {
    return options_.checksum_responses ? kChecksumBytes : 0;
  }
  // Validates the checksum trailer of the response currently in the landing
  // block against the current call sequence.
  bool LandingChecksumOk(uint32_t size) const;
  // One RC op (read or write) between the channel's fixed regions with
  // transparent reconnect-and-retry on a QP-error completion. Throws after
  // max_reconnect_attempts or on any non-QP-error failure. Offsets are
  // ring-relative and shifted by the pooled span base at the MR boundary.
  sim::Task<rdma::WorkCompletion> RcOp(bool from_client, bool is_read, size_t local_off,
                                       size_t remote_off, uint32_t len, const char* what);
  // Replaces the RC pair after `failed` completed with a QP error. A no-op
  // when another actor already replaced it; concurrent callers wait for the
  // in-flight reconnect instead of racing a second one.
  sim::Task<void> EnsureConnected(rdma::QueuePair* failed);
  // Re-sends the current request under a fresh sequence tag. The server
  // re-executes it (handlers are idempotent by the RFP contract: one request
  // block, one response block, last write wins).
  sim::Task<void> ReissueRequest();

  // ---- Overload protection (docs/overload.md) ------------------------------

  // True while the R-based switch to server-reply is suppressed because a
  // BUSY response was observed within the last overload_override_calls
  // completed calls.
  bool OverloadSuppressesSwitch() const {
    return calls_since_busy_ < options_.overload_override_calls;
  }
  // Response-acceptance seq filter (see set_unsafe_accept_stale_seq).
  bool AcceptSeq(uint16_t header_seq, uint16_t expected) const {
    return unsafe_accept_stale_seq_ || header_seq == expected;
  }
  // Books one call outcome into the breaker window (bad = BUSY or fetch
  // timeout) and drives the state machine. `sent_epoch` is the breaker
  // epoch the call was sent under (stamped at ClientSend/SubmitCall): in
  // the half-open state only a call sent since the last open — the probe —
  // may deliver the verdict, so a stale call still draining from before
  // the outage can neither re-open the breaker a second time for the same
  // episode (double-counting breaker_opens) nor close it in the probe's
  // stead.
  void RecordBreakerOutcome(bool bad, uint64_t sent_epoch);
  // closed/half-open -> open: picks the jittered open interval.
  void OpenBreaker();
  // With the breaker open, sleeps out the open interval and arms the
  // half-open probe. No-op otherwise.
  sim::Task<void> MaybeAwaitBreaker();
  // Jittered sleep before re-issuing after the `nth_busy`-th consecutive
  // BUSY(admission) of this call.
  sim::Time BusyRetryDelay(uint16_t hint_us, int nth_busy);
  // Books a BUSY header observed for the current call; throws
  // DeadlineExceeded for BUSY(deadline). Shared by fetch and reply paths.
  void RecordBusyResponse(const ResponseHeader& header, uint64_t sent_epoch);
  // Moves this call's attempt-local fetch READs into the recovery bucket
  // (called when a re-issue abandons the attempt).
  void TransferAttemptReads(uint64_t* attempt_reads);
  void TraceBreaker(const char* what);

  sim::Engine& engine_;
  rdma::Fabric* fabric_;
  rdma::Node* client_node_;
  rdma::Node* server_node_;
  RfpOptions options_;
  rdma::QueuePair* client_qp_;  // client-side endpoint of the RC pair
  rdma::QueuePair* server_qp_;  // server-side endpoint of the RC pair
  std::shared_ptr<mem::Pool> server_pool_;  // keeps the arenas alive past the node
  std::shared_ptr<mem::Pool> client_pool_;
  mem::Span server_span_;  // pool span holding [request ring][response ring]
  mem::Span client_span_;  // pool span holding [staging ring][landing ring]
  RingView server_;        // ring-relative view of server_span_
  RingView client_;        // ring-relative view of client_span_
  size_t block_bytes_;     // bytes per block (header + max message)
  size_t resp_offset_;     // ring offset of the response block / landing

  // Client state.
  uint16_t seq_ = 0;
  uint32_t request_epoch_ = 0;  // stamped into every request header (0 = legacy)
  uint32_t last_req_size_ = 0;  // payload bytes still staged for re-issue
  uint32_t fetch_override_ = 0;  // window=1 SubmitCall per-call fetch size
  bool reconnect_in_progress_ = false;
  Mode mode_ = Mode::kRemoteFetch;
  sim::Time reply_mode_since_ = 0;  // trace: start of the current reply-mode span
  int slow_streak_ = 0;
  int fast_streak_ = 0;
  uint16_t last_server_time_us_ = 0;
  sim::BusyMeter client_busy_;

  // Overload-protection client state.
  sim::Time call_deadline_ = 0;  // absolute; 0 = none (current call)
  int calls_since_busy_ = 1 << 30;  // effectively "never saw BUSY"
  BreakerState breaker_state_ = BreakerState::kClosed;
  sim::Time breaker_open_until_ = 0;
  int breaker_window_calls_ = 0;
  int breaker_window_bad_ = 0;
  uint64_t breaker_epoch_ = 0;         // bumped on every open
  uint64_t scalar_breaker_epoch_ = 0;  // epoch the scalar call was sent under
  uint16_t last_retry_after_us_ = 0;
  sim::Rng rng_{0x4252};  // re-seeded per channel in the ctor

  // Pipelined-call state (empty / unused when window == 1).
  std::vector<ClientSlot> cslots_;
  std::vector<ServerSlot> sslots_;
  ClientSlot& cslot(int s) { return cslots_[static_cast<size_t>(s)]; }
  const ClientSlot& cslot(int s) const { return cslots_[static_cast<size_t>(s)]; }
  ServerSlot& sslot(int s) { return sslots_[static_cast<size_t>(s)]; }
  const ServerSlot& sslot(int s) const { return sslots_[static_cast<size_t>(s)]; }
  int staged_count_ = 0;
  int posted_count_ = 0;
  int last_recv_slot_ = 0;  // slot of the request TryServerRecv returned
  int recv_rr_ = 0;         // round-robin start of the server's slot scan

  // Server state.
  uint16_t last_recv_seq_ = 0;
  uint16_t last_resp_seq_ = 0;
  bool response_pushed_ = true;  // no unsent response outstanding
  sim::Time recv_time_ = 0;
  uint32_t last_resp_size_ = 0;
  uint64_t last_recv_deadline_ns_ = 0;
  uint32_t last_recv_epoch_ = 0;  // epoch of the last received request
  bool last_resp_busy_ = false;  // BUSY responses push the header only
  bool defer_server_pushes_ = false;  // see set_defer_server_pushes
  bool unsafe_accept_stale_seq_ = false;  // TEST ONLY, see setter
  bool unsafe_switch_race_ = false;       // TEST ONLY, see setter
  // Zero-copy entry pin for the scalar path's outstanding response.
  std::shared_ptr<const void> resp_pin_;

  Stats stats_;
};

}  // namespace rfp

#endif  // SRC_RFP_CHANNEL_H_
