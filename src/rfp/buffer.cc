#include "src/rfp/buffer.h"

#include <stdexcept>

namespace rfp {

BufferPool::Buffer BufferPool::MallocBuf(size_t size) {
  const uint64_t before = pool_->registrations();
  mem::Span span = pool_->Alloc(size);
  if (pool_->registrations() == before) {
    ++reuses_;
  } else {
    ++registrations_;
  }
  return Buffer{span, span.bytes().subspan(0, size), span.mr};
}

void BufferPool::FreeBuf(Buffer buffer) {
  if (!buffer.valid()) {
    throw std::invalid_argument("rfp buffer pool: freeing an invalid buffer");
  }
  pool_->Free(buffer.span);
}

}  // namespace rfp
