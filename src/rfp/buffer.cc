#include "src/rfp/buffer.h"

#include <bit>
#include <stdexcept>

namespace rfp {

size_t BufferPool::SizeClass(size_t size) {
  if (size == 0) {
    size = 1;
  }
  return std::bit_ceil(size);
}

BufferPool::Buffer BufferPool::MallocBuf(size_t size) {
  const size_t cls = SizeClass(size);
  auto& free_list = free_lists_[cls];
  rdma::MemoryRegion* mr = nullptr;
  if (!free_list.empty()) {
    mr = free_list.back();
    free_list.pop_back();
    ++reuses_;
  } else {
    mr = node_.RegisterMemory(cls, access_);
    ++registrations_;
  }
  return Buffer{mr, mr->bytes().subspan(0, size)};
}

void BufferPool::FreeBuf(Buffer buffer) {
  if (!buffer.valid()) {
    throw std::invalid_argument("rfp buffer pool: freeing an invalid buffer");
  }
  free_lists_[buffer.mr->size()].push_back(buffer.mr);
}

}  // namespace rfp
