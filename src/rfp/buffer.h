// Registered-buffer pool: the paper's malloc_buf / free_buf (Table 2).
//
// RDMA requires message memory to be registered with the RNIC, and
// registration is expensive, so the pool recycles freed regions by
// power-of-two size class instead of re-registering.

#ifndef SRC_RFP_BUFFER_H_
#define SRC_RFP_BUFFER_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/rdma/memory.h"
#include "src/rdma/node.h"

namespace rfp {

class BufferPool {
 public:
  struct Buffer {
    rdma::MemoryRegion* mr = nullptr;
    std::span<std::byte> bytes;

    bool valid() const { return mr != nullptr; }
  };

  explicit BufferPool(rdma::Node& node, uint32_t access = rdma::kAccessRemoteRead |
                                                          rdma::kAccessRemoteWrite)
      : node_(node), access_(access) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a registered buffer of at least `size` bytes (paper: malloc_buf).
  Buffer MallocBuf(size_t size);

  // Returns the buffer to the pool for reuse (paper: free_buf).
  void FreeBuf(Buffer buffer);

  uint64_t registrations() const { return registrations_; }
  uint64_t reuses() const { return reuses_; }

 private:
  static size_t SizeClass(size_t size);

  rdma::Node& node_;
  uint32_t access_;
  uint64_t registrations_ = 0;
  uint64_t reuses_ = 0;
  std::unordered_map<size_t, std::vector<rdma::MemoryRegion*>> free_lists_;
};

}  // namespace rfp

#endif  // SRC_RFP_BUFFER_H_
