// Registered-buffer pool: the paper's malloc_buf / free_buf (Table 2).
//
// RDMA requires message memory to be registered with the RNIC, and
// registration is expensive, so buffers recycle registered memory instead of
// re-registering. Since the mem::Pool subsystem (docs/memory.md) this is a
// thin facade over the node's shared buddy/slab pool: buffers are spans of
// the node's arenas, so rfp buffers, channel rings, and store slabs all
// draw from (and return to) the same registered memory.

#ifndef SRC_RFP_BUFFER_H_
#define SRC_RFP_BUFFER_H_

#include <cstdint>
#include <memory>
#include <span>

#include "src/mem/pool.h"
#include "src/rdma/memory.h"
#include "src/rdma/node.h"

namespace rfp {

class BufferPool {
 public:
  struct Buffer {
    mem::Span span;
    std::span<std::byte> bytes;
    // Backing arena region (shared with other spans of the same arena);
    // kept for call sites that resolve the buffer fabric-wide by rkey.
    rdma::MemoryRegion* mr = nullptr;

    bool valid() const { return span.valid(); }
  };

  explicit BufferPool(rdma::Node& node) : pool_(mem::Pool::Shared(node)) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a registered buffer of at least `size` bytes (paper: malloc_buf).
  Buffer MallocBuf(size_t size);

  // Returns the buffer to the pool for reuse (paper: free_buf).
  void FreeBuf(Buffer buffer);

  // MR registrations performed on behalf of this pool's allocations, and
  // allocations served entirely from already-registered memory.
  uint64_t registrations() const { return registrations_; }
  uint64_t reuses() const { return reuses_; }

 private:
  std::shared_ptr<mem::Pool> pool_;
  uint64_t registrations_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace rfp

#endif  // SRC_RFP_BUFFER_H_
