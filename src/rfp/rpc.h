// RPC on top of RFP channels (paper Fig 2 / Section 3.1).
//
// The server registers handlers by id; each server worker sweeps the
// channels it currently owns (EREW at any instant: a channel belongs to
// exactly one worker), dispatches requests, and publishes responses through
// Channel::ServerSend — which transparently follows whatever paradigm the
// client side of the channel is in. Clients call through RpcClient stubs
// exactly as they would with a socket-based RPC library; this is the
// "legacy interface" property the paper claims.
//
// With ServerOptions::multicore the workers are scheduled on the node's
// sim::CpuSet (one pinned core each, reserved via Node::ReserveWorkerCore
// with NIC-station affinity), hot or orphaned channels migrate between
// workers between sweeps, and each channel visit publishes its completed
// reply-mode slots in one doorbell batch — see docs/multicore.md. Default
// off: the legacy per-thread sweep with virtual-time-sleep CPU modelling.
//
// Message format: request = [uint16 rpc_id][payload]; response = [payload].

#ifndef SRC_RFP_RPC_H_
#define SRC_RFP_RPC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace rfp {

// What a handler produced: the response payload size (already written into
// the response span) and the simulated compute time the request costs on the
// server (the paper's "request process time" P).
//
// A handler that owns its value in registered memory may return it zero-copy
// instead of copying it into the response span: set `zero_copy` to the entry
// (see ZeroCopyRef's lifetime contract) and write only the prefix bytes —
// headers, found/miss flags — into the response span, with response_size
// counting just those prefix bytes. The server then publishes an indirect
// descriptor and the value never crosses its CPU; the client receives
// prefix + value assembled in order.
struct HandlerResult {
  size_t response_size = 0;
  sim::Time process_ns = 0;
  ZeroCopyRef zero_copy;  // invalid (default) = regular copied response

  HandlerResult() = default;
  HandlerResult(size_t size, sim::Time ns) : response_size(size), process_ns(ns) {}
  HandlerResult(size_t size, sim::Time ns, ZeroCopyRef zc)
      : response_size(size), process_ns(ns), zero_copy(std::move(zc)) {}
};

// Execution context a handler runs under. thread_index identifies the server
// thread, which EREW-partitioned applications (Jakiro) use to select their
// per-thread data partition.
struct HandlerContext {
  int thread_index = 0;
};

using Handler = std::function<HandlerResult(const HandlerContext& ctx,
                                            std::span<const std::byte> request,
                                            std::span<std::byte> response)>;

// Coroutine handler: may suspend (acquire simulated locks, stage multi-step
// updates). Used by the Pilaf and Memcached baselines.
using AsyncHandler = std::function<sim::Task<HandlerResult>(const HandlerContext& ctx,
                                                            std::span<const std::byte> request,
                                                            std::span<std::byte> response)>;

class RpcServer {
 public:
  RpcServer(rdma::Fabric& fabric, rdma::Node& node, int num_threads, ServerOptions options = {});

  // Flushes requests-served counters into the default metrics registry,
  // labeled {node}. Channels flush their own stats as they are destroyed.
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  rdma::Node& node() { return node_; }
  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Registers the handler for `rpc_id`. Must happen before Start().
  void RegisterHandler(uint16_t rpc_id, Handler handler);
  void RegisterAsyncHandler(uint16_t rpc_id, AsyncHandler handler);

  // Creates a channel from `client` to this server, served by `thread`.
  // The returned channel is owned by the server and lives as long as it
  // (or until CloseChannel).
  Channel* AcceptChannel(rdma::Node& client, const RfpOptions& options, int thread);

  // ---- Connection tier (src/conn, docs/connections.md) ---------------------

  // Destroys a channel previously returned by AcceptChannel: it leaves the
  // dispatch sweep and its rings return to the node pools (no MR is
  // deregistered — see docs/memory.md). When the channel's visit is
  // currently suspended mid-handler (busy fence), destruction is deferred to
  // the end of that visit, so a handler never loses the channel under its
  // feet. The caller must guarantee no client-side actor still uses the
  // channel; conn::ChannelCache detaches first when one might. Returns false
  // when this server does not own `channel`.
  bool CloseChannel(Channel* channel);

  // Handler lookup for out-of-band transports: the pooled connection tier
  // dispatches through the same handler table the channel sweep uses, so an
  // application's handlers serve pooled and dedicated clients alike.
  // Returns nullptr when no handler is registered for `rpc_id`.
  const AsyncHandler* FindHandler(uint16_t rpc_id) const;

  // Channels destroyed via CloseChannel (immediate + deferred).
  uint64_t channels_closed() const { return channels_closed_; }

  // Spawns one sweep actor per server thread.
  void Start();

  // Requests loops to exit at their next sweep.
  void Stop() { stop_ = true; }

  // ---- Fault injection (src/fault/) ---------------------------------------

  // Crashes worker `thread`: from its next sweep boundary it stops serving
  // (its channels go dark — in-flight fetches fail or fall back, depending
  // on the client's fault-tolerance options) until RestartThread. A request
  // already mid-handler completes first; the crash takes effect between
  // requests, which models a worker whose core is lost, not one whose
  // memory is torn mid-write. Under multicore + work_stealing the surviving
  // workers claim the crashed worker's channels at their next sweeps, so the
  // dark window lasts sweeps, not the whole outage. Idempotent.
  void CrashThread(int thread);

  // Brings a crashed worker back. Its next sweep picks up whatever request
  // headers are pending in its channels' request blocks, so requests issued
  // into the dark window complete after recovery without client re-sends.
  void RestartThread(int thread);

  bool thread_crashed(int thread) const {
    return threads_[static_cast<size_t>(thread)].crashed;
  }
  uint64_t thread_crashes() const { return thread_crashes_; }

  uint64_t requests_served() const { return requests_served_; }
  uint64_t requests_served_by(int thread) const {
    return threads_[static_cast<size_t>(thread)].served;
  }

  // ---- Replication epoch gate (docs/replication.md) ------------------------

  // Marks `rpc_id` as epoch-gated: before dispatch, a gated request's header
  // epoch (RequestHeader bits 24-30) is compared to this server's epoch, and
  // a mismatch — or a server that is not serving at all — is rejected with a
  // header-only REDIRECT instead of running the handler. Ungated ids (the
  // replication stream itself, health probes) always dispatch. Call at
  // setup, alongside RegisterHandler.
  void GateRpc(uint16_t rpc_id) { gated_rpcs_.insert(rpc_id); }

  // Updates the gate's view: `serving` is whether this node believes it is
  // the primary, `epoch` its current epoch, `leader_hint` the node id it
  // believes leads (echoed in redirects). A server with no gated rpc ids
  // ignores this entirely.
  void SetReplGate(bool serving, uint32_t epoch, uint16_t leader_hint) {
    repl_serving_ = serving;
    repl_epoch_ = epoch;
    repl_leader_hint_ = leader_hint;
  }

  bool repl_serving() const { return repl_serving_; }
  uint32_t repl_epoch() const { return repl_epoch_; }
  // Requests rejected with REDIRECT by the epoch gate.
  uint64_t requests_shed_redirect() const { return requests_shed_redirect_; }

  // ---- Overload protection (docs/overload.md) ------------------------------

  // True while `thread`'s watermark detector holds the overloaded state.
  bool thread_overloaded(int thread) const {
    return threads_[static_cast<size_t>(thread)].overloaded;
  }
  // Requests shed with BUSY(admission) / BUSY(deadline), summed over threads.
  uint64_t requests_shed_admission() const { return requests_shed_admission_; }
  uint64_t requests_shed_deadline() const { return requests_shed_deadline_; }
  // Times any thread's detector entered the overloaded state.
  uint64_t overload_enters() const { return overload_enters_; }

  // ---- Sweep hardening / multi-core dispatch (docs/multicore.md) -----------

  // Requests dropped instead of dispatched: runt requests (shorter than the
  // rpc id), unknown rpc ids, and oversized/corrupt size fields. A malformed
  // request must never kill the sweep actor — it is counted, traced, and the
  // rest of the sweep is served.
  uint64_t malformed_requests() const { return malformed_requests_; }

  // TEST ONLY (tests/explore corpus): lets the steal scan cross the busy
  // fence, modelling a dispatcher that forgets a visit can be suspended
  // mid-handler. Two workers then sweep one channel concurrently in some
  // schedules — the thief's recv clobbers the victim's slot cursor and a
  // response goes out with the wrong payload. The schedule explorer pins
  // exactly that bug; never set in production paths.
  void set_unsafe_steal_busy_channels(bool unsafe) { unsafe_steal_busy_ = unsafe; }

  // Channel migrations between workers (orphan claims + load steals).
  uint64_t channel_steals() const { return channel_steals_; }
  uint64_t thread_steals(int thread) const {
    return threads_[static_cast<size_t>(thread)].steals;
  }
  // Channels currently owned by `thread`'s sweep.
  int channels_owned_by(int thread) const;
  // Core the worker is pinned to under multicore (-1 when not multicore).
  int thread_core(int thread) const {
    return threads_[static_cast<size_t>(thread)].core;
  }

  // Stable trace-track id for worker `thread`: a tagged (server ordinal,
  // thread) encoding, NOT derived from `this`. The old
  // reinterpret_cast<uint64_t>(this) + thread scheme could collide across
  // servers (one server's base + k aliases a neighbor allocated k bytes
  // away); ordinals are process-unique and threads are < 2^16.
  uint64_t worker_track_id(int thread) const {
    return (uint64_t{0x5257} << 48) |  // "RW" tag, clear of heap pointers
           (server_ordinal_ << 16) | static_cast<uint64_t>(thread & 0xffff);
  }

 private:
  struct ThreadState {
    uint64_t served = 0;
    bool crashed = false;
    std::vector<std::byte> request_buf;
    std::vector<std::byte> response_buf;
    // Overload detector state (ServerOptions admission_control):
    double process_ewma_ns = 0;  // EWMA of measured per-request process time
    bool overloaded = false;
    // Multi-core dispatch state:
    int core = -1;        // CpuSet core this worker is pinned to
    uint64_t steals = 0;  // channels this worker claimed from others
  };

  // A served channel and the worker that currently sweeps it. EREW at any
  // instant: `owner` names the only worker that may touch the channel, and
  // `busy` fences a visit in progress (visits suspend, so a steal decided
  // mid-visit would otherwise hand two workers the same channel).
  // `channel == nullptr` marks a closed entry: it stays in endpoints_ (sweep
  // visits are index-based and may be suspended mid-iteration, so erasing
  // would shift indices under them) and every scan skips it. `closing`
  // defers a CloseChannel that raced an in-progress visit.
  struct ChannelEntry {
    Channel* channel = nullptr;
    int owner = 0;
    bool busy = false;
    bool closing = false;
  };

  sim::Task<void> ServeLoop(int thread_index);
  // Frees entry's channel (rings back to the pools) and tombstones the entry.
  void DestroyChannel(ChannelEntry& entry);
  void RecordMalformedRequest(int thread_index, const char* why);
  // Claims `entry` for `thief`; `why` labels the trace instant
  // ("orphan_claim" / "channel_steal").
  void StealChannel(ChannelEntry& entry, int thief, const char* why);

  rdma::Fabric& fabric_;
  rdma::Node& node_;
  ServerOptions options_;
  sim::Rng straggler_rng_;
  bool stop_ = false;
  bool started_ = false;
  bool unsafe_steal_busy_ = false;  // TEST ONLY, see setter
  uint64_t server_ordinal_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t thread_crashes_ = 0;
  uint64_t requests_shed_admission_ = 0;
  uint64_t requests_shed_deadline_ = 0;
  uint64_t overload_enters_ = 0;
  uint64_t malformed_requests_ = 0;
  uint64_t channel_steals_ = 0;
  uint64_t channels_closed_ = 0;
  // Replication epoch gate (docs/replication.md). Empty gated_rpcs_ = the
  // legacy single-node server; the defaults below then never matter.
  std::unordered_set<uint16_t> gated_rpcs_;
  bool repl_serving_ = true;
  uint32_t repl_epoch_ = 0;
  uint16_t repl_leader_hint_ = 0;
  uint64_t requests_shed_redirect_ = 0;
  std::unordered_map<uint16_t, AsyncHandler> handlers_;
  std::vector<ThreadState> threads_;
  // All accepted channels in acceptance order; each worker's sweep visits
  // the subsequence it owns, preserving the legacy per-thread order.
  std::vector<ChannelEntry> endpoints_;
  std::vector<std::unique_ptr<Channel>> owned_channels_;
};

class RpcClient {
 public:
  explicit RpcClient(Channel* channel);

  // Flushes call count and latency into the default metrics registry,
  // labeled {client} by the channel's client node.
  ~RpcClient();

  Channel* channel() { return channel_; }

  // Invokes `rpc_id` with `request`, writing the response payload into
  // `response` and returning its size. Per-call knobs — the propagated
  // deadline and the fetch-size override — travel in `options` as named
  // fields (see rfp::CallOptions); a default-constructed CallOptions
  // reproduces the plain three-argument call exactly. Throws
  // DeadlineExceeded when the call's deadline expires before the response
  // (see Channel::ClientRecv).
  sim::Task<size_t> Call(uint16_t rpc_id, std::span<const std::byte> request,
                         std::span<std::byte> response, const CallOptions& options = {});

  // ---- Pipelined calls (docs/pipelining.md) --------------------------------

  // Stages one call and returns its handle without waiting for the
  // response; on a channel with RfpOptions::window > 1 up to `window` calls
  // can be in flight, and a burst of submits is posted in one doorbell
  // batch by the next AwaitCall (or Channel::FlushCalls). Throws when the
  // window is full.
  sim::Task<Channel::CallHandle> SubmitCall(uint16_t rpc_id,
                                            std::span<const std::byte> request,
                                            const CallOptions& options = {});

  // Completes a submitted call into `response`, returning the payload size.
  // Calls may be awaited in any order.
  sim::Task<size_t> AwaitCall(Channel::CallHandle handle, std::span<std::byte> response);

  uint64_t calls() const { return calls_; }
  const sim::Histogram& latency() const { return latency_; }

 private:
  Channel* channel_;
  uint64_t calls_ = 0;
  sim::Histogram latency_;
  std::vector<std::byte> scratch_;
  // Submit time per slot, for end-to-end latency of pipelined calls.
  std::vector<sim::Time> submit_start_;
};

}  // namespace rfp

#endif  // SRC_RFP_RPC_H_
