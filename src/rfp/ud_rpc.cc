#include "src/rfp/ud_rpc.h"

#include <cstring>
#include <stdexcept>

namespace rfp {

namespace {

constexpr size_t kHdr = sizeof(UdHeader);
constexpr uint16_t kReplyFlag = 1;

size_t SlotBytes(const UdRpcOptions& options) { return kHdr + options.max_message_bytes; }

UdHeader LoadHeader(const rdma::MemoryRegion& mr, size_t offset) {
  return mr.Load<UdHeader>(offset);
}

}  // namespace

// ---- Server ---------------------------------------------------------------------

UdRpcServer::UdRpcServer(rdma::Fabric& fabric, rdma::Node& node, int num_threads,
                         UdRpcOptions options)
    : fabric_(fabric), node_(node), options_(options) {
  const size_t slot = SlotBytes(options_);
  for (int t = 0; t < num_threads; ++t) {
    qps_.push_back(fabric.CreateUd(node));
    regions_.push_back(node.RegisterMemory(slot * (static_cast<size_t>(options_.recv_pool) + 1),
                                           rdma::kAccessLocal));
  }
}

void UdRpcServer::RegisterHandler(uint16_t rpc_id, Handler handler) {
  handlers_[rpc_id] = std::move(handler);
}

rdma::AddressHandle UdRpcServer::address(int thread) const {
  return rdma::AddressHandle{node_.id(), qps_[static_cast<size_t>(thread)]->qp_num()};
}

uint64_t UdRpcServer::recv_overflows() const {
  uint64_t total = 0;
  for (const rdma::QueuePair* qp : qps_) {
    total += qp->dropped_no_recv();
  }
  return total;
}

void UdRpcServer::RepostRecv(int thread, uint64_t wr_id) {
  const size_t slot = SlotBytes(options_);
  qps_[static_cast<size_t>(thread)]->PostRecv(wr_id, *regions_[static_cast<size_t>(thread)],
                                              static_cast<size_t>(wr_id) * slot,
                                              static_cast<uint32_t>(slot));
}

void UdRpcServer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (int t = 0; t < num_threads(); ++t) {
    for (int i = 0; i < options_.recv_pool; ++i) {
      RepostRecv(t, static_cast<uint64_t>(i));
    }
    fabric_.engine().Spawn(ServeLoop(t));
  }
}

sim::Task<void> UdRpcServer::ServeLoop(int thread) {
  sim::Engine& engine = fabric_.engine();
  rdma::QueuePair* qp = qps_[static_cast<size_t>(thread)];
  rdma::MemoryRegion* mr = regions_[static_cast<size_t>(thread)];
  const size_t slot = SlotBytes(options_);
  const size_t tx_offset = slot * static_cast<size_t>(options_.recv_pool);
  std::vector<std::byte> request(options_.max_message_bytes);
  while (!stop_) {
    const auto wc = qp->recv_cq()->Poll();
    if (!wc.has_value()) {
      co_await engine.Sleep(sim::Nanos(200));
      continue;
    }
    if (!wc->ok() || wc->byte_len < kHdr) {
      RepostRecv(thread, wc->wr_id);
      continue;
    }
    const size_t rx_offset = static_cast<size_t>(wc->wr_id) * slot;
    const UdHeader header = LoadHeader(*mr, rx_offset);
    const size_t payload = wc->byte_len - kHdr;
    mr->ReadBytes(rx_offset + kHdr, std::span(request.data(), payload));
    RepostRecv(thread, wc->wr_id);

    auto it = handlers_.find(header.rpc_id);
    if (it == handlers_.end()) {
      throw std::runtime_error("ud rpc: no handler for id " + std::to_string(header.rpc_id));
    }
    // The handler writes the response payload directly into the TX slot.
    std::byte* tx = mr->bytes().data() + tx_offset;
    const HandlerResult result =
        it->second(HandlerContext{thread}, std::span<const std::byte>(request.data(), payload),
                   std::span<std::byte>(tx + kHdr, options_.max_message_bytes));
    co_await engine.Sleep(result.process_ns);

    UdHeader reply = header;
    reply.flags = kReplyFlag;
    mr->Store(tx_offset, reply);
    const rdma::AddressHandle to{header.client_node, header.client_qpn};
    rdma::WorkCompletion swc = co_await qp->SendTo(
        to, *mr, tx_offset, static_cast<uint32_t>(kHdr + result.response_size));
    if (!swc.ok()) {
      throw std::runtime_error("ud rpc: reply send failed");
    }
    ++requests_served_;
  }
}

// ---- Client --------------------------------------------------------------------

UdRpcClient::UdRpcClient(rdma::Fabric& fabric, rdma::Node& node, rdma::AddressHandle server,
                         UdRpcOptions options)
    : fabric_(fabric), node_(node), server_(server), options_(options) {
  qp_ = fabric.CreateUd(node);
  const size_t slot = SlotBytes(options_);
  region_ =
      node.RegisterMemory(slot * (static_cast<size_t>(options_.recv_pool) + 1), rdma::kAccessLocal);
  for (int i = 0; i < options_.recv_pool; ++i) {
    RepostRecv(static_cast<uint64_t>(i));
  }
}

void UdRpcClient::RepostRecv(uint64_t wr_id) {
  const size_t slot = SlotBytes(options_);
  qp_->PostRecv(wr_id, *region_, static_cast<size_t>(wr_id) * slot,
                static_cast<uint32_t>(slot));
}

sim::Task<size_t> UdRpcClient::Call(uint16_t rpc_id, std::span<const std::byte> request,
                                    std::span<std::byte> response) {
  sim::Engine& engine = fabric_.engine();
  const sim::Time start = engine.now();
  const size_t slot = SlotBytes(options_);
  const size_t tx_offset = slot * static_cast<size_t>(options_.recv_pool);
  const uint32_t seq = ++next_seq_;

  UdHeader header;
  header.client_node = node_.id();
  header.client_qpn = qp_->qp_num();
  header.seq = seq;
  header.rpc_id = rpc_id;
  region_->Store(tx_offset, header);
  region_->WriteBytes(tx_offset + kHdr, request);
  const uint32_t wire_bytes = static_cast<uint32_t>(kHdr + request.size());

  ++stats_.calls;
  int transmits = 0;
  sim::Time deadline = 0;
  while (true) {
    if (transmits == 0 || engine.now() >= deadline) {
      if (transmits > options_.max_retransmits) {
        ++stats_.failures;
        throw std::runtime_error("ud rpc: call timed out after retransmits");
      }
      if (transmits > 0) {
        ++stats_.retransmits;
      }
      ++transmits;
      ++stats_.sends;
      co_await qp_->SendTo(server_, *region_, tx_offset, wire_bytes);
      deadline = engine.now() + options_.retry_timeout_ns;
    }
    // Drain arrived responses.
    while (auto wc = qp_->recv_cq()->Poll()) {
      const size_t rx_offset = static_cast<size_t>(wc->wr_id) * slot;
      const UdHeader reply = LoadHeader(*region_, rx_offset);
      const size_t payload = wc->byte_len >= kHdr ? wc->byte_len - kHdr : 0;
      const bool match = wc->ok() && reply.seq == seq;
      if (match && payload <= response.size()) {
        region_->ReadBytes(rx_offset + kHdr, response.subspan(0, payload));
      }
      RepostRecv(wc->wr_id);
      if (match) {
        latency_.Record(engine.now() - start);
        co_return payload;
      }
      ++stats_.duplicates;  // stale reply to an earlier (retransmitted) seq
    }
    co_await engine.Sleep(options_.client_poll_ns);
  }
}

}  // namespace rfp
