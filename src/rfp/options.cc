#include "src/rfp/options.h"

#include <stdexcept>
#include <string>

#include "src/rfp/wire.h"

namespace rfp {

namespace {

void Reject(const char* what) {
  throw std::invalid_argument(std::string("rfp options: ") + what);
}

void CheckNonNegative(sim::Time v, const char* what) {
  if (v < 0) Reject(what);
}

void CheckPositive(sim::Time v, const char* what) {
  if (v <= 0) Reject(what);
}

// Negated compares so NaN rejects too.
void CheckUnitInterval(double v, const char* what) {
  if (!(v > 0.0 && v <= 1.0)) Reject(what);
}

}  // namespace

void ValidateOptions(const RfpOptions& options) {
  if (options.retry_threshold < 0) Reject("retry_threshold must be >= 0");
  if (options.fetch_size == 0) Reject("fetch_size must be > 0");
  if (options.slow_calls_before_switch < 1) Reject("slow_calls_before_switch must be >= 1");
  if (options.fast_calls_before_switch_back < 1) {
    Reject("fast_calls_before_switch_back must be >= 1");
  }
  if (options.max_message_bytes == 0) Reject("max_message_bytes must be > 0");
  if (options.window < 1) Reject("window must be >= 1");
  if (options.window > kMaxWindow) Reject("window must be <= wire::kMaxWindow");
  if (options.max_registered_bytes == 0) Reject("max_registered_bytes must be > 0");
  {
    // Request ring + response ring must fit in the per-channel registration
    // budget; the response slot grows by the checksum trailer when enabled.
    const uint64_t slot = static_cast<uint64_t>(kReqHeaderBytes) + options.max_message_bytes +
                          (options.checksum_responses ? kChecksumBytes : 0);
    if (uint64_t{2} * static_cast<uint64_t>(options.window) * slot >
        options.max_registered_bytes) {
      Reject("window * slot size exceeds max_registered_bytes");
    }
  }
  CheckPositive(options.reply_poll_interval_ns, "reply_poll_interval_ns must be > 0");
  CheckNonNegative(options.reply_poll_cpu_ns, "reply_poll_cpu_ns must be >= 0");
  CheckNonNegative(options.fetch_timeout_ns, "fetch_timeout_ns must be >= 0");
  CheckNonNegative(options.fetch_backoff_initial_ns, "fetch_backoff_initial_ns must be >= 0");
  CheckNonNegative(options.fetch_backoff_max_ns, "fetch_backoff_max_ns must be >= 0");
  if (options.corrupt_fetches_before_reissue < 1) {
    Reject("corrupt_fetches_before_reissue must be >= 1");
  }
  if (options.max_reconnect_attempts < 0) Reject("max_reconnect_attempts must be >= 0");
  CheckNonNegative(options.reconnect_delay_ns, "reconnect_delay_ns must be >= 0");
  if (options.max_reissue_attempts < 1) Reject("max_reissue_attempts must be >= 1");
  CheckNonNegative(options.call_deadline_ns, "call_deadline_ns must be >= 0");
  if (options.breaker_window < 1) Reject("breaker_window must be >= 1");
  CheckUnitInterval(options.breaker_failure_rate, "breaker_failure_rate must be in (0, 1]");
  CheckNonNegative(options.breaker_open_ns, "breaker_open_ns must be >= 0");
  CheckNonNegative(options.busy_backoff_max_ns, "busy_backoff_max_ns must be >= 0");
  if (options.overload_override_calls < 0) Reject("overload_override_calls must be >= 0");
}

void ValidateOptions(const RfpOptions& options, size_t pool_cap_bytes,
                     const std::string& node_name) {
  ValidateOptions(options);
  if (pool_cap_bytes == 0) {
    return;  // unbounded pool
  }
  const uint64_t slot = static_cast<uint64_t>(kReqHeaderBytes) + options.max_message_bytes +
                        (options.checksum_responses ? kChecksumBytes : 0);
  const uint64_t ring = uint64_t{2} * static_cast<uint64_t>(options.window) * slot;
  if (ring > pool_cap_bytes) {
    throw std::invalid_argument(
        "rfp options: channel rings need " + std::to_string(ring) + " bytes (2 rings x window " +
        std::to_string(options.window) + " x " + std::to_string(slot) +
        "-byte slots) but node '" + node_name + "' caps registered memory at " +
        std::to_string(pool_cap_bytes) +
        " bytes (NicConfig mem_max_registered_bytes); shrink window or max_message_bytes, or "
        "raise the cap");
  }
}

void ValidateOptions(const ServerOptions& options) {
  if (options.max_message_bytes == 0) Reject("max_message_bytes must be > 0");
  CheckNonNegative(options.dispatch_cpu_ns, "dispatch_cpu_ns must be >= 0");
  if (!(options.straggler_prob >= 0.0 && options.straggler_prob <= 1.0)) {
    Reject("straggler_prob must be in [0, 1]");
  }
  CheckNonNegative(options.straggler_extra_ns, "straggler_extra_ns must be >= 0");
  CheckNonNegative(options.poll_cpu_per_channel_ns, "poll_cpu_per_channel_ns must be >= 0");
  // 0 would let an idle (or crashed) ServeLoop spin without advancing
  // virtual time, wedging the whole simulation.
  CheckPositive(options.idle_sleep_ns, "idle_sleep_ns must be > 0");
  if (!(options.copy_cpu_ns_per_byte >= 0.0)) Reject("copy_cpu_ns_per_byte must be >= 0");
  if (options.admission_budget < 1) Reject("admission_budget must be >= 1");
  CheckNonNegative(options.overload_lo_watermark_ns, "overload_lo_watermark_ns must be >= 0");
  CheckNonNegative(options.overload_hi_watermark_ns, "overload_hi_watermark_ns must be >= 0");
  if (options.overload_lo_watermark_ns > options.overload_hi_watermark_ns) {
    Reject("overload watermarks must satisfy lo <= hi");
  }
  CheckUnitInterval(options.process_ewma_alpha, "process_ewma_alpha must be in (0, 1]");
  CheckNonNegative(options.shed_cpu_ns, "shed_cpu_ns must be >= 0");
  if (options.max_steals_per_sweep < 0) Reject("max_steals_per_sweep must be >= 0");
  if (options.steal_min_backlog < 1) Reject("steal_min_backlog must be >= 1");
}

}  // namespace rfp
