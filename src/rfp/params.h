// Parameter selection for RFP (paper Section 3.2).
//
// The paper reduces "when should clients stop fetching" and "how much should
// they fetch" to choosing R (retry threshold) and F (fetch size), bounded by
// hardware knees:
//
//   * F must lie in [L, H]: below L the RNIC's per-op startup cost hides any
//     size reduction; above H fetching loses to bandwidth/out-bound parity.
//   * R must lie in [1, N]: past N retries a call has been outstanding
//     longer than the fetch-vs-reply crossover P*, so continuing to spin
//     buys <10% throughput while doubling client CPU (Fig 9).
//
// Within those bounds an enumeration evaluates Eq 2 over sampled result
// sizes (and optionally process times) and picks the maximizing pair.

#ifndef SRC_RFP_PARAMS_H_
#define SRC_RFP_PARAMS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/rdma/config.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace rfp {

struct IopsPoint {
  uint32_t size;  // fetch size in bytes
  double mops;    // measured in-bound READ IOPS at that size
};

// The hardware envelope, measured once per deployment (paper: "tested by
// running benchmarks only once").
struct HardwareProfile {
  std::vector<IopsPoint> inbound_read;  // ascending by size
  double outbound_write_mops = 0.0;     // saturated out-bound WRITE rate
  double fetch_rtt_ns = 0.0;            // one small-fetch round trip

  // Linear interpolation over the measured points (clamped at the ends).
  double InboundMopsAt(uint32_t size) const;
};

struct ProfileOptions {
  std::vector<uint32_t> sizes = {16,  32,  64,   128,  256,  384,  512,
                                 640, 768, 1024, 1536, 2048, 4096, 8192};
  sim::Time window = sim::Millis(1);
  int client_nodes = 7;
  int threads_per_node = 4;
  int outbound_threads = 4;
};

// Runs the micro-benchmarks on a private fabric built from `config` and
// returns the measured envelope.
HardwareProfile MeasureProfile(const rdma::FabricConfig& config, const ProfileOptions& opts = {});

// L: the largest measured size still within `flat_tolerance` of the
// small-size IOPS peak (fetching less than L buys nothing).
uint32_t DetectL(const HardwareProfile& profile, double flat_tolerance = 0.02);

// H: the largest measured size where remote fetching still beats
// server-reply by at least `advantage_margin` (in-bound/out-bound ratio).
uint32_t DetectH(const HardwareProfile& profile, double advantage_margin = 1.50);

// N: retries that fit within the fetch-vs-reply crossover P*, where
// P* = server_threads / (outbound_mops * (1 + gain_threshold)) — beyond it
// repeated fetching gains < gain_threshold over server-reply (Fig 9).
int DeriveRetryBound(const HardwareProfile& profile, int server_threads = 16,
                     double gain_threshold = 0.10);

struct ParamChoice {
  int retry_threshold = 5;    // R
  uint32_t fetch_size = 256;  // F (includes the 8-byte response header)
  double predicted_score = 0.0;
};

struct SelectorConfig {
  uint32_t header_bytes = 8;
  int max_retry = 0;       // 0 -> DeriveRetryBound
  uint32_t l = 0;          // 0 -> DetectL
  uint32_t h = 0;          // 0 -> DetectH
  uint32_t size_step = 64; // enumeration granularity inside [L, H]
  int server_threads = 16;
};

// Eq 2 enumeration. For each candidate (R, F):
//   T(R,F) = sum_i Ti,   Ti = I(F)      if header+S_i <= F   (one fetch)
//                        Ti = I(F)/2    otherwise            (two fetches)
// When process-time samples are provided, calls whose P exceeds R fetch
// round trips are scored at the server-reply (out-bound) rate instead,
// which is what makes R matter in the enumeration.
ParamChoice SelectParameters(const HardwareProfile& profile,
                             std::span<const uint32_t> result_sizes,
                             std::span<const sim::Time> process_times = {},
                             const SelectorConfig& cfg = {});

// Reservoir sampler feeding SelectParameters during a run (paper: pre-run
// or periodic on-line sampling).
class OnlineSampler {
 public:
  OnlineSampler(size_t capacity, uint64_t seed) : capacity_(capacity), rng_(seed) {}

  void Record(uint32_t result_size, sim::Time process_ns);

  uint64_t observed() const { return observed_; }
  std::span<const uint32_t> sizes() const { return sizes_; }
  std::span<const sim::Time> times() const { return times_; }

 private:
  size_t capacity_;
  sim::Rng rng_;
  uint64_t observed_ = 0;
  std::vector<uint32_t> sizes_;
  std::vector<sim::Time> times_;
};

}  // namespace rfp

#endif  // SRC_RFP_PARAMS_H_
