// Tunables of the Remote Fetching Paradigm (paper Section 3.2).

#ifndef SRC_RFP_OPTIONS_H_
#define SRC_RFP_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace rfp {

struct RfpOptions {
  // R: failed remote-fetch retries tolerated per call before the call counts
  // as "slow". The paper derives R <= N = 5 for its hardware.
  int retry_threshold = 5;

  // F: default fetch size in bytes, including the 8-byte response header.
  // One RDMA READ completes the call whenever header+payload <= F.
  // Must lie in [L, H] of the hardware profile; the paper uses 256 for
  // 32-byte values and 640 for mixed-size workloads.
  uint32_t fetch_size = 256;

  // Paradigm switch hysteresis: only fall back to server-reply after this
  // many *consecutive* calls exceeded retry_threshold (paper: two), so rare
  // stragglers do not flap the mode.
  int slow_calls_before_switch = 2;

  // Switch back to remote fetching when the server-reported process time
  // drops to or below this bound for `fast_calls_before_switch_back`
  // consecutive replies. 7 us is the paper's fetch-vs-reply crossover.
  uint16_t switch_back_us = 7;
  int fast_calls_before_switch_back = 2;

  // Largest message (request or response payload) a channel can carry.
  uint32_t max_message_bytes = 8192 + 64;

  // ---- Pipelining (docs/pipelining.md) -------------------------------------

  // W: outstanding calls the channel supports via per-channel request and
  // response slot rings. 1 (the default) is the paper's one-call-at-a-time
  // channel, bit-for-bit identical to the pre-pipelining implementation;
  // window > 1 enables Channel::SubmitCall/AwaitCall with doorbell-batched
  // posting. Bounded by wire::kMaxWindow.
  int window = 1;

  // Upper bound on the registered memory a single channel may pin on the
  // server: 2 * window * slot bytes must fit (request ring + response ring).
  // Guards against a window * max_message_bytes combination that would ask
  // the server to register an unbounded block per channel.
  uint32_t max_registered_bytes = 2u << 20;

  // Coalesced fetch sweeps (docs/multicore.md): when a sweep has >= 2 slots
  // awaiting responses, issue ONE spanning READ that covers every pending
  // response slot between the lowest and highest index (whole blocks,
  // contiguous in the response ring) instead of one READ per slot. The
  // server's in-bound engine then serves ~1 op per call (the request WRITE)
  // plus a bandwidth-priced sliver per sweep, instead of 2 ops per call —
  // which is what lets pipelined fetch throughput approach the 11.26 MOPS
  // in-bound envelope instead of half of it. Coalesced sweeps read whole
  // response blocks, so fetch_size / per-call overrides only shape
  // uncoalesced sweeps (single pending slot). Off by default: per-slot
  // fetches reproduce the paper's Table-3 retry accounting exactly.
  bool coalesced_fetch = false;

  // Forces a fixed paradigm, disabling the hybrid switch. Used by the
  // ServerReply baseline ("Jakiro w/o switch" in Fig 14 uses kForceFetch).
  enum class ForceMode : uint8_t { kAdaptive, kForceFetch, kForceReply };
  ForceMode force_mode = ForceMode::kAdaptive;

  // Client-side polling cadence while waiting in server-reply mode: the
  // client checks its local response landing every interval, costing
  // `reply_poll_cpu_ns` of CPU per check (this is what drops client CPU
  // below 30% in Fig 15).
  sim::Time reply_poll_interval_ns = 1000;
  sim::Time reply_poll_cpu_ns = 30;

  // ---- Fault tolerance (docs/fault_injection.md) ---------------------------
  // Everything below defaults to *off* / neutral: a channel built with
  // default options behaves bit-for-bit like one built before the fault
  // layer existed.

  // Deadline for one remote-fetch call, measured from the start of
  // ClientRecv. 0 disables. On expiry an adaptive channel falls back to
  // server-reply immediately (without waiting out the slow-call streak); a
  // forced-fetch channel re-issues the request instead and re-arms the
  // deadline.
  sim::Time fetch_timeout_ns = 0;

  // Bounded exponential backoff between fetch retries once a call has
  // exceeded retry_threshold failures: sleep initial, 2*initial, ... capped
  // at max. 0 disables (the paper's tight retry loop).
  sim::Time fetch_backoff_initial_ns = 0;
  sim::Time fetch_backoff_max_ns = 100 * 1000;

  // Appends an 8-byte checksum trailer to every response (see
  // wire::Checksum64). A mismatching fetch counts as corrupt; after
  // `corrupt_fetches_before_reissue` consecutive corrupt observations the
  // client re-issues the request (idempotent re-execution keyed by the wire
  // seq tag). Grows each response block by kChecksumBytes.
  bool checksum_responses = false;
  int corrupt_fetches_before_reissue = 2;

  // A QP-error completion triggers transparent reconnection (tear down the
  // RC pair, wait out the re-establishment handshake, retry the op). An op
  // that still fails after `max_reconnect_attempts` reconnects throws.
  int max_reconnect_attempts = 8;
  sim::Time reconnect_delay_ns = 20 * 1000;

  // Bound on request re-issues (timeout or corruption triggered) before the
  // call gives up and throws.
  int max_reissue_attempts = 8;

  // ---- Overload protection (docs/overload.md) ------------------------------
  // Also default-off / neutral. BUSY responses can only appear when the
  // *server* enables admission control, so default channels never take any
  // of these paths.

  // Relative per-call deadline stamped (as an absolute virtual time) into
  // every request header. 0 disables. The server sheds requests whose
  // deadline expired before dispatch with BUSY(deadline); the client
  // surfaces both that and a deadline that expires while backing off as
  // DeadlineExceeded.
  sim::Time call_deadline_ns = 0;

  // Client circuit breaker (closed -> open -> half-open), driven by the
  // BUSY/timeout rate over tumbling windows of `breaker_window` call
  // outcomes: when bad/total >= breaker_failure_rate the breaker opens for
  // breaker_open_ns (jittered by +/-25%, stretched to the server's
  // retry-after hint when that is larger); the next call after the open
  // interval is the half-open probe — success closes the breaker, another
  // BUSY/timeout reopens it.
  bool breaker_enabled = false;
  int breaker_window = 16;
  double breaker_failure_rate = 0.5;  // in (0, 1]
  sim::Time breaker_open_ns = 50 * 1000;
  uint64_t breaker_seed = 0x4252;  // "BR": jitter RNG, mixed per channel

  // Jittered backoff before re-issuing a request the server shed with
  // BUSY(admission): sleep ~hint * 2^(n-1) for the n-th consecutive BUSY of
  // the call, capped here, jittered by +/-25% to de-synchronize retry
  // stampedes across clients.
  sim::Time busy_backoff_max_ns = 2 * 1000 * 1000;

  // Overload override of the R-based switch hysteresis: after observing a
  // BUSY response, suppress the switch to server-reply for this many
  // completed calls. An overloaded server sheds because its sweep threads
  // are saturated; switching to server-reply would add an out-bound WRITE
  // per response on top — a stampede of switches collapses exactly the
  // in/out asymmetry RFP exploits (paper Section 3.2, Fig 12). Timeout-driven
  // switches (fetch_timeout_ns) are NOT suppressed: they are the crash
  // recovery path, not a load signal.
  int overload_override_calls = 8;
};

// Per-call options for RpcClient::Call / SubmitCall (docs/pipelining.md §4).
// Collapses what used to be positional trailing parameters into named fields
// with neutral defaults; a default-constructed CallOptions reproduces the old
// `Call(rpc_id, request, response)` behavior exactly.
struct CallOptions {
  // Absolute-relative per-call deadline: the call throws DeadlineExceeded if
  // it is not complete within this many ns of issue. 0 falls back to the
  // channel-level RfpOptions::call_deadline_ns (which itself defaults to 0 =
  // no deadline).
  sim::Time deadline_ns = 0;

  // Per-call override of RfpOptions::fetch_size for this call's first fetch.
  // 0 = use the channel default. Clamped to the channel's response block.
  uint32_t fetch_size = 0;
};

struct ServerOptions {
  // Largest message any accepted channel may carry. The per-thread dispatch
  // buffers are sized once from this (suspended handlers hold spans into
  // them, so they must never reallocate).
  uint32_t max_message_bytes = 8192 + 64;
  // CPU cost of unpacking a request, dispatching, and packing the response
  // (excluding the handler's own process time).
  sim::Time dispatch_cpu_ns = 150;
  // Straggler model: a small fraction of requests take unexpectedly long on
  // the server (cache misses, interrupts — the paper's Section 3.2 reports
  // ~0.2% of requests with unexpectedly long process time, which is what
  // produces the 4-9 fetch-retry tail of Table 3 and the 15-17 us latency
  // outliers of Section 4.4.2).
  double straggler_prob = 0.0004;
  sim::Time straggler_extra_ns = 9000;
  uint64_t straggler_seed = 0x5247;  // "RG"
  // CPU cost of scanning one channel's request header during a poll sweep.
  sim::Time poll_cpu_per_channel_ns = 10;
  // Idle back-off between sweeps that found no request.
  sim::Time idle_sleep_ns = 200;
  // Per-byte cost of copying payloads in and out of RFP buffers.
  double copy_cpu_ns_per_byte = 0.02;

  // ---- Admission control / overload shedding (docs/overload.md) ------------
  // Default-off: a server built with default options serves exactly as
  // before. Deadline shedding is independent of this switch — it activates
  // whenever a request header carries a nonzero deadline.

  bool admission_control = false;
  // Max requests one sweep admits while the thread is overloaded; the rest
  // receive BUSY(admission) with a retry-after hint.
  int admission_budget = 4;
  // Overload detector with watermark hysteresis: estimated queued work =
  // (channels with a pending request) x (EWMA of measured per-request
  // process time, floored at dispatch_cpu_ns). Enter overload at >= hi,
  // leave at <= lo (lo <= hi enforced by ValidateOptions).
  sim::Time overload_hi_watermark_ns = 40 * 1000;
  sim::Time overload_lo_watermark_ns = 10 * 1000;
  double process_ewma_alpha = 0.25;  // in (0, 1]
  // CPU cost of publishing one BUSY response: shedding is cheap, not free.
  sim::Time shed_cpu_ns = 60;

  // ---- Multi-core dispatch (docs/multicore.md) -----------------------------
  // Default-off: legacy sweep actors model CPU as pure virtual-time sleeps
  // and never contend for cores — bit-for-bit the pre-multicore server.

  // Pin each worker to a core reserved via rdma::Node::ReserveWorkerCore and
  // charge all sweep CPU (poll, dispatch, copy, process, shed) through
  // sim::CpuSet::ComputeOn, so workers sharing a core contend realistically.
  bool multicore = false;
  // (multicore) Let workers claim channels owned by crashed workers and, when
  // idle, steal backlogged channels from loaded workers between sweeps.
  bool work_stealing = true;
  // Channels one worker may claim per sweep (orphan claims and load steals
  // combined); bounds rebalancing churn.
  int max_steals_per_sweep = 1;
  // A live worker's channel is stealable only when it has at least this many
  // pending requests — a cold channel is not worth migrating. Load steals
  // additionally require the victim to own at least two more channels than
  // the thief, so migration strictly improves balance and two idle workers
  // cannot ping-pong a hot channel between sweeps.
  int steal_min_backlog = 2;
  // (multicore) Defer server-reply pushes during a channel visit and publish
  // every completed slot in one doorbell batch when the visit ends (the first
  // WRITE pays the full out-bound issue cost, followers the batched marginal
  // — mirroring the client-side posting batch of docs/pipelining.md).
  bool batch_reply_publication = true;
};

// Throw std::invalid_argument when an option set is inconsistent (negative
// times, watermark lo > hi, breaker thresholds outside (0,1], ...). Channel
// and RpcServer constructors enforce these, mirroring rdma::ValidateConfig.
void ValidateOptions(const RfpOptions& options);
void ValidateOptions(const ServerOptions& options);

// Additionally cross-checks the window x slot ring footprint against a node
// pool's registered-memory cap (mem::PoolOptions::max_registered_bytes, i.e.
// the NicConfig mem_max_registered_bytes knob; 0 = unbounded, always passes).
// Without this, an oversized window only surfaces deep inside mem::Pool as a
// generic ExhaustedError; the Channel constructor calls this up front so a
// misconfiguration reads as "shrink the window", not "pool exhausted".
// `node_name` labels the offending node in the message.
void ValidateOptions(const RfpOptions& options, size_t pool_cap_bytes,
                     const std::string& node_name);

}  // namespace rfp

#endif  // SRC_RFP_OPTIONS_H_
