// Datagram RPC over UD queue pairs — the HERD/FaSST-style design the paper
// contrasts RFP against (Section 5).
//
// Requests and responses travel as unreliable UD SENDs: no connection
// state, no ACKs, symmetric two-sided costs. The price is exactly what the
// paper describes: "message lost, reorder and duplication ... cannot be
// simply ignored" — so this client carries sequence numbers, retransmits on
// timeout, and filters duplicate replies; and the server burns out-bound
// issue capacity on every reply, so its throughput is bounded the same way
// server-reply is.
//
// Wire format (both directions):
//   [UdHeader: client_node u32 | client_qpn u32 | seq u32 | rpc_id u16 |
//    flags u16][payload]

#ifndef SRC_RFP_UD_RPC_H_
#define SRC_RFP_UD_RPC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace rfp {

struct UdHeader {
  uint32_t client_node = 0;  // reply address
  uint32_t client_qpn = 0;
  uint32_t seq = 0;
  uint16_t rpc_id = 0;
  uint16_t flags = 0;
};
static_assert(sizeof(UdHeader) == 16, "UD header layout is part of the wire format");

struct UdRpcOptions {
  int recv_pool = 64;              // posted RECVs per QP
  uint32_t max_message_bytes = 8192 + 64;
  sim::Time client_poll_ns = 200;  // response poll cadence
  sim::Time retry_timeout_ns = 20'000;
  int max_retransmits = 10;
};

class UdRpcServer {
 public:
  // One UD QP (and one service actor) per thread.
  UdRpcServer(rdma::Fabric& fabric, rdma::Node& node, int num_threads,
              UdRpcOptions options = {});

  void RegisterHandler(uint16_t rpc_id, Handler handler);

  // Datagram address clients send to (round-robin by thread).
  rdma::AddressHandle address(int thread) const;
  int num_threads() const { return static_cast<int>(qps_.size()); }

  void Start();
  void Stop() { stop_ = true; }

  uint64_t requests_served() const { return requests_served_; }
  // Requests dropped because the recv pool was empty (burst overflow).
  uint64_t recv_overflows() const;

 private:
  sim::Task<void> ServeLoop(int thread);
  void RepostRecv(int thread, uint64_t wr_id);

  rdma::Fabric& fabric_;
  rdma::Node& node_;
  UdRpcOptions options_;
  bool stop_ = false;
  bool started_ = false;
  uint64_t requests_served_ = 0;
  std::unordered_map<uint16_t, Handler> handlers_;
  std::vector<rdma::QueuePair*> qps_;
  // One registered region per thread: [recv_pool slots][tx staging].
  std::vector<rdma::MemoryRegion*> regions_;
};

class UdRpcClient {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t sends = 0;        // includes retransmits
    uint64_t retransmits = 0;
    uint64_t duplicates = 0;   // late replies to already-completed seqs
    uint64_t failures = 0;     // calls that exhausted max_retransmits
  };

  UdRpcClient(rdma::Fabric& fabric, rdma::Node& node, rdma::AddressHandle server,
              UdRpcOptions options = {});

  // Returns the response payload size; throws after max_retransmits
  // timeouts (the datagram analogue of a broken connection).
  sim::Task<size_t> Call(uint16_t rpc_id, std::span<const std::byte> request,
                         std::span<std::byte> response);

  const Stats& stats() const { return stats_; }
  const sim::Histogram& latency() const { return latency_; }

 private:
  void RepostRecv(uint64_t wr_id);

  rdma::Fabric& fabric_;
  rdma::Node& node_;
  rdma::AddressHandle server_;
  UdRpcOptions options_;
  rdma::QueuePair* qp_;
  rdma::MemoryRegion* region_;  // [recv slots][tx staging]
  uint32_t next_seq_ = 0;
  Stats stats_;
  sim::Histogram latency_;
};

}  // namespace rfp

#endif  // SRC_RFP_UD_RPC_H_
