// Operation histories and a linearizability oracle for KV scenarios.
//
// A HistoryRecorder collects the concurrent history of GET/PUT/DELETE
// operations a scenario issues — invocation and response events stamped with
// a recorder-wide monotone order — plus the store-side apply events
// kv::BucketTable emits for diagnostics. CheckLinearizable() then decides
// whether the completed operations admit a legal sequential order (Wing &
// Gong's algorithm, with memoized DFS): each operation must appear to take
// effect atomically between its invocation and its response, and operations
// whose response never arrived (the client saw a deadline, crash, or BUSY
// exhaustion) may have taken effect at any point after invocation — or never.
//
// Linearizability is compositional: a history is linearizable iff its
// per-key projections are (Herlihy & Wing, Theorem 1 — keys are independent
// objects as long as the store never couples them; scenarios that rely on
// this should keep tables large enough that eviction can't link keys, and
// can assert Stats::evictions == 0). The checker partitions by key, so cost
// scales with per-key contention, not total history length.

#ifndef SRC_EXPLORE_HISTORY_H_
#define SRC_EXPLORE_HISTORY_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace explore {

enum class OpKind : uint8_t { kGet, kPut, kDelete };

const char* OpKindName(OpKind kind);

struct HistoryOp {
  uint64_t id = 0;
  OpKind kind = OpKind::kGet;
  std::string key;
  // PUT: the value written. GET: the value returned (when found).
  std::string value;
  // GET: key present. DELETE: key existed. Meaningless for PUT.
  bool found = false;
  // Global order stamps from the recorder's monotone counter. respond_order
  // == 0 means the operation is still pending (no response recorded):
  // a linearization may apply it at any point after invocation, or drop it.
  uint64_t invoke_order = 0;
  uint64_t respond_order = 0;

  bool pending() const { return respond_order == 0; }
};

// Store-side apply event (BucketTable mutating/reading its state), recorded
// for failure diagnostics only — the oracle judges the client-visible
// history, never the internal order.
struct ApplyEvent {
  OpKind kind = OpKind::kGet;
  std::string key;
  uint64_t order = 0;
};

struct LinResult {
  bool ok = true;
  std::string message;  // first non-linearizable key + its projected history
  uint64_t keys_checked = 0;
  uint64_t states_explored = 0;  // memoized (applied-set, value) states
};

class HistoryRecorder {
 public:
  // Client-side hooks. OnInvoke returns the operation id to pass to the
  // matching OnXxxResponse; an op with no response stays pending.
  uint64_t OnInvoke(OpKind kind, std::string_view key, std::string_view value = {});
  void OnGetResponse(uint64_t id, bool found, std::string_view value);
  void OnPutResponse(uint64_t id);
  void OnDeleteResponse(uint64_t id, bool found);

  // Byte-span conveniences for kv callers.
  uint64_t OnInvoke(OpKind kind, std::span<const std::byte> key,
                    std::span<const std::byte> value = {});
  void OnGetResponse(uint64_t id, bool found, std::span<const std::byte> value);

  // Seeds the expected pre-history value of `key` (for scenarios that start
  // recording against a pre-populated store). Unseeded keys start absent.
  void NoteInitialValue(std::string_view key, std::string_view value);

  // Store-side hook (BucketTable::set_history_recorder).
  void OnApply(OpKind kind, std::string_view key);

  const std::vector<HistoryOp>& ops() const { return ops_; }
  const std::vector<ApplyEvent>& applies() const { return applies_; }
  size_t completed_ops() const;
  void Clear();

  // Runs the per-key linearizability check over the recorded history.
  // `max_ops_per_key` bounds the DFS (the mask fits a uint64_t shift); keys
  // exceeding it fail with an "oversized" message rather than exploding.
  LinResult CheckLinearizable(size_t max_ops_per_key = 24) const;

  // Strict-mode wrapper: throws LinearizabilityError on a non-linearizable
  // history and increments explore.lin_violations. `schedule_trace` (e.g.
  // from the engine's policy) is appended to the message so the failing
  // interleaving stays replayable.
  void CheckStrict(const std::string& schedule_trace = "") const;

 private:
  uint64_t next_order_ = 1;
  uint64_t next_id_ = 1;
  std::vector<HistoryOp> ops_;
  std::vector<ApplyEvent> applies_;
  std::vector<std::pair<std::string, std::string>> initial_values_;
};

class LinearizabilityError : public std::runtime_error {
 public:
  explicit LinearizabilityError(const std::string& what) : std::runtime_error(what) {}
};

// Free-function form for histories assembled by hand (tests).
LinResult CheckLinearizable(
    const std::vector<HistoryOp>& ops,
    const std::vector<std::pair<std::string, std::string>>& initial_values = {},
    size_t max_ops_per_key = 24);

}  // namespace explore

#endif  // SRC_EXPLORE_HISTORY_H_
