#include "src/explore/history.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/obs/metrics.h"

namespace explore {

namespace {

std::string ViewToString(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::string RenderOp(const HistoryOp& op) {
  std::string out = OpKindName(op.kind);
  out += "(" + op.key;
  if (op.kind == OpKind::kPut) {
    out += "=" + op.value;
  }
  out += ")";
  if (op.pending()) {
    out += "@(" + std::to_string(op.invoke_order) + ",pending)";
    return out;
  }
  if (op.kind == OpKind::kGet) {
    out += op.found ? "->" + op.value : "->miss";
  } else if (op.kind == OpKind::kDelete) {
    out += op.found ? "->hit" : "->miss";
  }
  out += "@(" + std::to_string(op.invoke_order) + "," + std::to_string(op.respond_order) + ")";
  return out;
}

// Per-key Wing & Gong search. States are (applied-op bitmask, register
// value); the register is "absent" or one of the values PUT can install,
// interned to a small id so a state packs into one uint64_t memo key.
class KeyLinearizer {
 public:
  KeyLinearizer(std::vector<const HistoryOp*> ops, const std::string* initial_value)
      : ops_(std::move(ops)) {
    // Intern the value alphabet: id 0 = absent.
    values_.emplace_back();  // placeholder for "absent"
    if (initial_value != nullptr) {
      initial_state_ = Intern(*initial_value);
    }
    for (const HistoryOp* op : ops_) {
      if (op->kind == OpKind::kPut) {
        Intern(op->value);
      }
    }
    completed_mask_ = 0;
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (!ops_[i]->pending()) {
        completed_mask_ |= uint64_t{1} << i;
      }
    }
  }

  bool Linearizable() {
    return Dfs(0, initial_state_);
  }

  uint64_t states_explored() const { return memo_.size(); }

 private:
  uint64_t Intern(const std::string& value) {
    for (size_t i = 1; i < values_.size(); ++i) {
      if (values_[i] == value) {
        return i;
      }
    }
    values_.push_back(value);
    return values_.size() - 1;
  }

  // True when the GET/DELETE result recorded in `op` matches register
  // state `state` (0 = absent, else value id).
  bool ResultConsistent(const HistoryOp& op, uint64_t state) const {
    if (op.kind == OpKind::kGet) {
      if (op.found != (state != 0)) {
        return false;
      }
      return !op.found || values_[state] == op.value;
    }
    if (op.kind == OpKind::kDelete) {
      return op.found == (state != 0);
    }
    return true;  // PUT carries no observable result
  }

  uint64_t Apply(const HistoryOp& op, uint64_t state) {
    switch (op.kind) {
      case OpKind::kPut:
        return Intern(op.value);
      case OpKind::kDelete:
        return 0;
      case OpKind::kGet:
        return state;
    }
    return state;
  }

  bool Dfs(uint64_t applied, uint64_t state) {
    if ((applied & completed_mask_) == completed_mask_) {
      return true;  // all completed ops linearized; pending leftovers drop
    }
    if (!memo_.insert(applied * values_.size() + state).second) {
      return false;
    }
    for (size_t i = 0; i < ops_.size(); ++i) {
      const uint64_t bit = uint64_t{1} << i;
      if ((applied & bit) != 0) {
        continue;
      }
      const HistoryOp& op = *ops_[i];
      // Real-time order: op can only linearize now if no other unapplied
      // *completed* op finished before this one was even invoked.
      bool minimal = true;
      for (size_t j = 0; j < ops_.size(); ++j) {
        if (j == i || (applied & (uint64_t{1} << j)) != 0) {
          continue;
        }
        const HistoryOp& other = *ops_[j];
        if (!other.pending() && other.respond_order < op.invoke_order) {
          minimal = false;
          break;
        }
      }
      if (!minimal) {
        continue;
      }
      // Pending ops linearize without a result constraint (the client never
      // saw one); completed ops must match what the client observed.
      if (!op.pending() && !ResultConsistent(op, state)) {
        continue;
      }
      if (Dfs(applied | bit, Apply(op, state))) {
        return true;
      }
    }
    return false;
  }

  std::vector<const HistoryOp*> ops_;
  std::vector<std::string> values_;
  uint64_t initial_state_ = 0;
  uint64_t completed_mask_ = 0;
  std::unordered_set<uint64_t> memo_;
};

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kGet:
      return "GET";
    case OpKind::kPut:
      return "PUT";
    case OpKind::kDelete:
      return "DEL";
  }
  return "?";
}

uint64_t HistoryRecorder::OnInvoke(OpKind kind, std::string_view key,
                                   std::string_view value) {
  HistoryOp op;
  op.id = next_id_++;
  op.kind = kind;
  op.key = std::string(key);
  op.value = std::string(value);
  op.invoke_order = next_order_++;
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

uint64_t HistoryRecorder::OnInvoke(OpKind kind, std::span<const std::byte> key,
                                   std::span<const std::byte> value) {
  return OnInvoke(kind, std::string_view(ViewToString(key)),
                  std::string_view(ViewToString(value)));
}

void HistoryRecorder::OnGetResponse(uint64_t id, bool found, std::string_view value) {
  for (HistoryOp& op : ops_) {
    if (op.id == id) {
      op.found = found;
      op.value = std::string(value);
      op.respond_order = next_order_++;
      return;
    }
  }
}

void HistoryRecorder::OnGetResponse(uint64_t id, bool found,
                                    std::span<const std::byte> value) {
  OnGetResponse(id, found, std::string_view(ViewToString(value)));
}

void HistoryRecorder::OnPutResponse(uint64_t id) {
  for (HistoryOp& op : ops_) {
    if (op.id == id) {
      op.respond_order = next_order_++;
      return;
    }
  }
}

void HistoryRecorder::OnDeleteResponse(uint64_t id, bool found) {
  for (HistoryOp& op : ops_) {
    if (op.id == id) {
      op.found = found;
      op.respond_order = next_order_++;
      return;
    }
  }
}

void HistoryRecorder::NoteInitialValue(std::string_view key, std::string_view value) {
  initial_values_.emplace_back(std::string(key), std::string(value));
}

void HistoryRecorder::OnApply(OpKind kind, std::string_view key) {
  applies_.push_back(ApplyEvent{kind, std::string(key), next_order_++});
}

size_t HistoryRecorder::completed_ops() const {
  size_t n = 0;
  for (const HistoryOp& op : ops_) {
    n += op.pending() ? 0u : 1u;
  }
  return n;
}

void HistoryRecorder::Clear() {
  ops_.clear();
  applies_.clear();
  initial_values_.clear();
  next_order_ = 1;
  next_id_ = 1;
}

LinResult HistoryRecorder::CheckLinearizable(size_t max_ops_per_key) const {
  return explore::CheckLinearizable(ops_, initial_values_, max_ops_per_key);
}

void HistoryRecorder::CheckStrict(const std::string& schedule_trace) const {
  obs::MetricsRegistry::Default()
      .GetCounter("explore.lin_checks", {})
      ->Add(1);
  LinResult result = CheckLinearizable();
  if (result.ok) {
    return;
  }
  obs::MetricsRegistry::Default()
      .GetCounter("explore.lin_violations", {})
      ->Add(1);
  std::string message = "history not linearizable: " + result.message;
  if (!schedule_trace.empty()) {
    message += " [schedule=" + schedule_trace + "]";
  }
  throw LinearizabilityError(message);
}

LinResult CheckLinearizable(
    const std::vector<HistoryOp>& ops,
    const std::vector<std::pair<std::string, std::string>>& initial_values,
    size_t max_ops_per_key) {
  LinResult result;
  max_ops_per_key = std::min<size_t>(max_ops_per_key, 56);  // memo key packing
  // Project the history per key (linearizability composes across keys).
  // Pending GETs constrain nothing — they observed nothing and write
  // nothing — so they are dropped before the search.
  std::map<std::string, std::vector<const HistoryOp*>> by_key;
  for (const HistoryOp& op : ops) {
    if (op.pending() && op.kind == OpKind::kGet) {
      continue;
    }
    by_key[op.key].push_back(&op);
  }
  for (auto& [key, key_ops] : by_key) {
    ++result.keys_checked;
    if (key_ops.size() > max_ops_per_key) {
      result.ok = false;
      result.message = "key '" + key + "' has " + std::to_string(key_ops.size()) +
                       " ops, above the per-key DFS bound of " +
                       std::to_string(max_ops_per_key);
      return result;
    }
    const std::string* initial = nullptr;
    for (const auto& [ikey, ivalue] : initial_values) {
      if (ikey == key) {
        initial = &ivalue;
        break;
      }
    }
    KeyLinearizer linearizer(key_ops, initial);
    const bool ok = linearizer.Linearizable();
    result.states_explored += linearizer.states_explored();
    if (!ok) {
      result.ok = false;
      std::string rendered;
      for (const HistoryOp* op : key_ops) {
        if (!rendered.empty()) {
          rendered += " ";
        }
        rendered += RenderOp(*op);
      }
      result.message = "key '" + key + "': no linearization of " +
                       std::to_string(key_ops.size()) + " ops explains [" + rendered + "]";
      return result;
    }
  }
  return result;
}

}  // namespace explore
