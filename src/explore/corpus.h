// The explorer corpus: five dataplane scenarios, each pinned to a seeded
// mutant knob that re-introduces a class of concurrency bug the RFP
// protocol's invariants exist to prevent. Shared between the corpus tests
// (tests/explore/corpus_test.cc), which assert both that each mutant is
// caught within the CI schedule budget and that the real code passes, and
// the CI driver (bench/bench_ext_explore.cc), which runs the clean corpus
// at a fixed budget and dumps the exploration metrics via --json.
//
// Every builder takes `mutant`: false runs the real dataplane, true flips
// the scenario's unsafe_* knob. The scenarios:
//
//   1. LateDuplicateScenario — Channel::set_unsafe_accept_stale_seq drops
//      the response seq filter; a deadline-abandoned GET's stale response is
//      accepted as the next call's result, which the per-key linearizability
//      oracle rejects (a completed PUT was overwritten).
//   2. StealBusyScenario — RpcServer::set_unsafe_steal_busy_channels lets
//      the orphan-claim scan cross the busy fence; two workers sweep one
//      pipelined channel and the thief's recv clobbers the victim's slot
//      cursor, mis-slotting a response. Meant to be crossed with
//      StealCrashPlans() so crashes race the victim's suspended visit.
//   3. CowPinnedScenario — BucketTable::set_unsafe_inplace_put overwrites a
//      pinned zero-copy entry in place; the strict-mode race detector throws
//      race.fetch_store out of the run.
//   4. SwitchRaceScenario — Channel::set_unsafe_switch_race disables the
//      post-switch resend safety net; a response published while the
//      client's mode-switch WRITE is in flight stays stranded server-side
//      and the call dies on its deadline.
//   5. SplitBrainScenario — FailoverCoordinator::set_unsafe_skip_demotion
//      models a promotion that forgot to demote the killed primary; the
//      resurrected node serves a stale-epoch write the new leader never
//      sees, which the per-key oracle (and the checker's epoch-monotonicity
//      invariant) rejects.

#pragma once

#include <string>
#include <vector>

#include "src/explore/explorer.h"
#include "src/fault/plan.h"

namespace explore {
namespace corpus {

Scenario LateDuplicateScenario(bool mutant);
Scenario StealBusyScenario(bool mutant);
Scenario CowPinnedScenario(bool mutant);
Scenario SwitchRaceScenario(bool mutant);
Scenario SplitBrainScenario(bool mutant);

// Fault cross-product for StealBusyScenario: crash worker 0 at staggered
// instants so the orphan claim races the victim's visit.
std::vector<fault::FaultPlan> StealCrashPlans();

// The whole corpus, for drivers that iterate it.
struct Entry {
  std::string name;
  Scenario (*make)(bool mutant);
  // Plans to cross with the schedule exploration (empty for most entries).
  std::vector<fault::FaultPlan> (*plans)();  // null when the entry has none
};
std::vector<Entry> Entries();

}  // namespace corpus
}  // namespace explore
