// Systematic schedule exploration over the deterministic simulator.
//
// The simulator is deterministic: for a fixed scenario, the only source of
// nondeterminism real hardware would add is the order of same-timestamp
// events. sim::SchedulePolicy turns each such tie into an explicit decision
// point; the Explorer drives a scenario closure through many schedules by
// controlling those decisions:
//
//   * bounded exhaustive enumeration — depth-first over the decision tree
//     (lexicographic order on decision traces), complete for scenarios whose
//     tree fits the schedule budget;
//   * seeded-random sampling — uniform tie-breaks from per-schedule seeds,
//     for scenarios whose tree does not fit;
//   * optional cross-product with a set of fault::FaultPlans, so fault
//     timing races against schedule choice.
//
// Every run's decision trace is recorded, distinct end states are counted by
// state hash, and the first failing schedule is shrunk to a minimal decision
// trace (fewest non-FIFO choices) that still fails — a replayable, diffable
// artifact printed in the report and attached by check::FabricChecker to any
// strict-mode violation. Reported through obs: explore.schedules,
// explore.distinct_states, explore.violations.

#ifndef SRC_EXPLORE_EXPLORER_H_
#define SRC_EXPLORE_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fault/plan.h"
#include "src/sim/engine.h"
#include "src/sim/schedule.h"

namespace explore {

// Everything a scenario closure gets handed for one schedule. The engine has
// the schedule policy pre-installed; the scenario builds its world on it,
// runs it, and returns an Outcome.
struct ScenarioRun {
  sim::Engine& engine;
  // Fault plan for this run (empty plan when Options::fault_plans is empty).
  const fault::FaultPlan& plan;
  // Index of the fault plan within Options::fault_plans (0 when empty).
  size_t plan_index = 0;
  // Sequential index of this schedule within the exploration.
  uint64_t schedule_index = 0;
};

struct Outcome {
  bool ok = true;
  // Failure description (assertion text, exception message, ...).
  std::string message;
  // Scenario-defined end-state fingerprint, mixed with engine counters for
  // distinct-state accounting. Scenarios that don't care can leave it 0.
  uint64_t state_hash = 0;

  static Outcome Pass(uint64_t hash = 0) { return Outcome{true, "", hash}; }
  static Outcome Fail(std::string message) { return Outcome{false, std::move(message), 0}; }
};

// A scenario must be re-runnable: each invocation builds a fresh world on the
// provided engine. Throwing (e.g. check::ViolationError in strict mode) is
// equivalent to returning Outcome::Fail with the exception text.
using Scenario = std::function<Outcome(ScenarioRun&)>;

struct Options {
  // Total schedule budget across all fault plans (>= 1).
  uint64_t max_schedules = 256;
  // Base seed for the random-sampling phase.
  uint64_t seed = 1;
  // Cap on the number of decision points the exhaustive phase will increment
  // through; deeper decision points run FIFO. Bounds the enumerated tree.
  size_t max_decision_depth = 24;
  // Fraction of the budget (in percent) spent on exhaustive enumeration
  // before falling back to random sampling. 100 = purely exhaustive until the
  // budget or the tree is spent; 0 = purely random.
  uint32_t exhaustive_share_pct = 50;
  // Fault plans to cross with schedule exploration; empty = one empty plan.
  std::vector<fault::FaultPlan> fault_plans;
  // Shrink the first failing trace to a minimal one (extra scenario runs,
  // bounded by max_shrink_runs, not counted against max_schedules).
  bool shrink = true;
  uint64_t max_shrink_runs = 512;
  // Label for obs metrics ({scenario=<label>}) and report printing.
  std::string label = "scenario";
};

struct Report {
  // Schedules actually run (<= Options::max_schedules; exhaustive phase may
  // finish the whole tree early).
  uint64_t schedules = 0;
  // Distinct (state_hash, engine fingerprint) end states observed.
  uint64_t distinct_states = 0;
  // Failing schedules observed (exploration stops at the first one, so this
  // is 0 or 1 plus any shrink-phase reruns that also failed).
  uint64_t violations = 0;
  // True when the exhaustive phase enumerated the entire decision tree for
  // every fault plan within the budget: the scenario is *verified* over all
  // schedules up to max_decision_depth, not just sampled.
  bool exhausted = false;
  // First failure, if any.
  bool failed = false;
  std::string failure_message;
  size_t failing_plan_index = 0;
  // Decision trace of the first failing schedule, then the shrunk minimal
  // trace (equal when shrinking is off or couldn't reduce it).
  sim::DecisionTrace failing_trace;
  sim::DecisionTrace minimal_trace;

  // One-line human summary ("explored 128 schedules, 17 distinct states...").
  std::string Summary() const;
};

class Explorer {
 public:
  explicit Explorer(Options options);

  // Runs the scenario under up to max_schedules schedules; stops at the
  // first failure and (optionally) shrinks it.
  Report Run(const Scenario& scenario);

 private:
  struct RunResult {
    Outcome outcome;
    sim::DecisionTrace trace;          // decisions the policy recorded
    std::vector<sim::Decision> decisions;  // with arities, for DFS stepping
    uint64_t fingerprint = 0;
  };

  RunResult RunOne(const Scenario& scenario, sim::SchedulePolicy& policy,
                   const fault::FaultPlan& plan, size_t plan_index,
                   uint64_t schedule_index);
  // Replays `trace`; returns true if the scenario still fails.
  bool FailsUnder(const Scenario& scenario, const sim::DecisionTrace& trace,
                  const fault::FaultPlan& plan, size_t plan_index, std::string* message);
  sim::DecisionTrace Shrink(const Scenario& scenario, sim::DecisionTrace trace,
                            const fault::FaultPlan& plan, size_t plan_index);

  Options options_;
};

// Convenience: replay one recorded schedule (e.g. a Report::minimal_trace or
// the [schedule=...] suffix of a strict-mode violation) against a scenario.
// `plan` defaults to the empty plan. Returns the scenario outcome.
Outcome Replay(const Scenario& scenario, const sim::DecisionTrace& trace,
               const fault::FaultPlan& plan = fault::FaultPlan());

// Computes the next trace in lexicographic DFS order from the decisions of
// the run just finished: the deepest decision (bounded by max_depth) whose
// choice can still be incremented, with everything after it reset. Returns
// false when the (depth-bounded) tree is exhausted.
bool NextTrace(const std::vector<sim::Decision>& decisions, size_t max_depth,
               sim::DecisionTrace* next);

}  // namespace explore

#endif  // SRC_EXPLORE_EXPLORER_H_
