#include "src/explore/explorer.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/obs/metrics.h"
#include "src/sim/random.h"

namespace explore {

namespace {

uint64_t MixFingerprint(const Outcome& outcome, const sim::Engine& engine) {
  uint64_t h = sim::Mix64(outcome.state_hash + 0x9e3779b97f4a7c15ULL);
  h ^= sim::Mix64(static_cast<uint64_t>(engine.now()) + 0x517cc1b727220a95ULL);
  h ^= sim::Mix64(engine.events_processed() + 0x2545f4914f6cdd1dULL);
  return h;
}

sim::DecisionTrace TrimTrailingZeros(sim::DecisionTrace trace) {
  while (!trace.empty() && trace.back() == 0) {
    trace.pop_back();
  }
  return trace;
}

const fault::FaultPlan& EmptyPlan() {
  static const fault::FaultPlan* plan = new fault::FaultPlan();
  return *plan;
}

}  // namespace

std::string Report::Summary() const {
  std::string out = "explored " + std::to_string(schedules) + " schedules (" +
                    std::to_string(distinct_states) + " distinct states" +
                    (exhausted ? ", tree exhausted" : "") + ")";
  if (failed) {
    out += "; FAILED [schedule=" + sim::FormatDecisionTrace(minimal_trace) +
           "]: " + failure_message;
  } else {
    out += "; no violation";
  }
  return out;
}

Explorer::Explorer(Options options) : options_(std::move(options)) {
  if (options_.max_schedules == 0) {
    options_.max_schedules = 1;
  }
  options_.exhaustive_share_pct = std::min<uint32_t>(options_.exhaustive_share_pct, 100);
}

Explorer::RunResult Explorer::RunOne(const Scenario& scenario, sim::SchedulePolicy& policy,
                                     const fault::FaultPlan& plan, size_t plan_index,
                                     uint64_t schedule_index) {
  policy.ResetRecording();
  sim::Engine engine;
  engine.set_schedule_policy(&policy);
  ScenarioRun run{engine, plan, plan_index, schedule_index};
  RunResult result;
  try {
    result.outcome = scenario(run);
  } catch (const std::exception& e) {
    result.outcome = Outcome::Fail(e.what());
  }
  result.decisions = policy.decisions();
  result.trace = policy.choices();
  result.fingerprint = MixFingerprint(result.outcome, engine);
  return result;
}

bool Explorer::FailsUnder(const Scenario& scenario, const sim::DecisionTrace& trace,
                          const fault::FaultPlan& plan, size_t plan_index,
                          std::string* message) {
  sim::ReplayPolicy policy(trace);
  RunResult r = RunOne(scenario, policy, plan, plan_index, 0);
  if (!r.outcome.ok && message != nullptr) {
    *message = r.outcome.message;
  }
  return !r.outcome.ok;
}

sim::DecisionTrace Explorer::Shrink(const Scenario& scenario, sim::DecisionTrace trace,
                                    const fault::FaultPlan& plan, size_t plan_index) {
  trace = TrimTrailingZeros(std::move(trace));
  uint64_t runs = 0;
  // Greedy minimization over the choice lattice: a trace is "smaller" if it
  // has fewer trailing decisions or smaller choice values (0 = FIFO). Each
  // accepted candidate must still fail on replay, so the result is a failing
  // schedule with a minimal set of non-FIFO decisions this procedure can
  // reach — typically one or two choices for the corpus races.
  bool improved = true;
  while (improved && runs < options_.max_shrink_runs) {
    improved = false;
    for (size_t i = 0; i < trace.size() && runs < options_.max_shrink_runs; ++i) {
      if (trace[i] == 0) {
        continue;
      }
      for (uint32_t candidate_choice : {uint32_t{0}, trace[i] - 1}) {
        if (candidate_choice >= trace[i]) {
          break;  // decrement collapsed into the zero we already tried
        }
        sim::DecisionTrace candidate = trace;
        candidate[i] = candidate_choice;
        candidate = TrimTrailingZeros(std::move(candidate));
        ++runs;
        if (FailsUnder(scenario, candidate, plan, plan_index, nullptr)) {
          trace = std::move(candidate);
          improved = true;
          break;
        }
      }
      if (improved) {
        break;  // indices may have shifted after trimming; rescan
      }
    }
  }
  return trace;
}

Report Explorer::Run(const Scenario& scenario) {
  obs::Counter* schedules_metric = obs::MetricsRegistry::Default().GetCounter(
      "explore.schedules", {{"scenario", options_.label}});
  obs::Counter* states_metric = obs::MetricsRegistry::Default().GetCounter(
      "explore.distinct_states", {{"scenario", options_.label}});
  obs::Counter* violations_metric = obs::MetricsRegistry::Default().GetCounter(
      "explore.violations", {{"scenario", options_.label}});

  std::vector<const fault::FaultPlan*> plans;
  if (options_.fault_plans.empty()) {
    plans.push_back(&EmptyPlan());
  } else {
    for (const fault::FaultPlan& plan : options_.fault_plans) {
      plans.push_back(&plan);
    }
  }

  Report report;
  std::unordered_set<uint64_t> states;
  const uint64_t per_plan =
      std::max<uint64_t>(1, options_.max_schedules / plans.size());
  bool all_exhausted = true;

  for (size_t p = 0; p < plans.size() && !report.failed; ++p) {
    const fault::FaultPlan& plan = *plans[p];
    const uint64_t exhaustive_budget =
        options_.exhaustive_share_pct == 100
            ? per_plan
            : per_plan * options_.exhaustive_share_pct / 100;
    uint64_t used = 0;
    bool tree_exhausted = false;

    auto note = [&](const RunResult& r) {
      ++report.schedules;
      ++used;
      schedules_metric->Add(1);
      if (states.insert(r.fingerprint).second) {
        states_metric->Add(1);
      }
      if (!r.outcome.ok) {
        report.failed = true;
        ++report.violations;
        violations_metric->Add(1);
        report.failure_message = r.outcome.message;
        report.failing_plan_index = p;
        report.failing_trace = TrimTrailingZeros(r.trace);
        report.minimal_trace = report.failing_trace;
      }
    };

    // Phase 1: depth-first enumeration of the decision tree in lexicographic
    // trace order. Each run's recorded (arity, choice) sequence tells us the
    // next unexplored branch; determinism guarantees the forced prefix
    // reproduces the same arities, so the walk covers the tree exactly once.
    sim::DecisionTrace prefix;
    while (used < exhaustive_budget && !report.failed) {
      sim::ReplayPolicy policy(prefix);
      RunResult r = RunOne(scenario, policy, plan, p, report.schedules);
      note(r);
      if (report.failed) {
        break;
      }
      if (!NextTrace(r.decisions, options_.max_decision_depth, &prefix)) {
        tree_exhausted = true;
        break;
      }
    }

    // Phase 2: seeded-random sampling for the remaining budget (skipped when
    // the tree is already fully enumerated — more runs add nothing).
    if (!tree_exhausted) {
      all_exhausted = false;
      while (used < per_plan && !report.failed) {
        const uint64_t schedule_seed =
            sim::Mix64(options_.seed ^ sim::Mix64(p * 0x100000001b3ULL + used));
        sim::RandomShufflePolicy policy(schedule_seed);
        RunResult r = RunOne(scenario, policy, plan, p, report.schedules);
        note(r);
      }
    }

    if (report.failed && options_.shrink) {
      report.minimal_trace = Shrink(scenario, report.failing_trace, plan, p);
      // Refresh the message from the minimal schedule (same bug, but the
      // printed detail should match the artifact we hand the user).
      std::string message;
      if (FailsUnder(scenario, report.minimal_trace, plan, p, &message)) {
        report.failure_message = message;
      }
    }
  }

  report.distinct_states = states.size();
  report.exhausted = all_exhausted && !report.failed;
  return report;
}

Outcome Replay(const Scenario& scenario, const sim::DecisionTrace& trace,
               const fault::FaultPlan& plan) {
  sim::ReplayPolicy policy(trace);
  sim::Engine engine;
  engine.set_schedule_policy(&policy);
  ScenarioRun run{engine, plan, 0, 0};
  try {
    return scenario(run);
  } catch (const std::exception& e) {
    return Outcome::Fail(e.what());
  }
}

bool NextTrace(const std::vector<sim::Decision>& decisions, size_t max_depth,
               sim::DecisionTrace* next) {
  const size_t depth = std::min(decisions.size(), max_depth);
  for (size_t i = depth; i-- > 0;) {
    if (decisions[i].choice + 1 < decisions[i].arity) {
      next->clear();
      next->reserve(i + 1);
      for (size_t j = 0; j < i; ++j) {
        next->push_back(decisions[j].choice);
      }
      next->push_back(decisions[i].choice + 1);
      return true;
    }
  }
  return false;
}

}  // namespace explore
