#include "src/explore/corpus.h"

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/check/checker.h"
#include "src/explore/history.h"
#include "src/fault/injector.h"
#include "src/kv/bucket_table.h"
#include "src/kv/jakiro.h"
#include "src/rdma/fabric.h"
#include "src/repl/cluster.h"
#include "src/rfp/channel.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"
#include "src/sim/engine.h"
#include "src/sim/schedule.h"
#include "src/sim/time.h"

namespace explore {
namespace corpus {
namespace {

constexpr uint16_t kKvGet = 1;
constexpr uint16_t kKvPut = 2;
constexpr uint16_t kEcho = 3;

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

std::string ToString(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

// The schedule trace recorded so far on this run's engine, for attaching to
// strict-mode failures.
std::string TraceOf(sim::Engine& engine) {
  return engine.schedule_policy() != nullptr
             ? sim::FormatDecisionTrace(engine.schedule_policy()->choices())
             : std::string();
}

}  // namespace

// Mini-KV over RPC, fetch paradigm, one server thread, BucketTable store and
// a HistoryRecorder judging the client-visible history. Client A's first GET
// is abandoned on its deadline while the server is still computing; the
// server's (now stale) response lands in A's block anyway. Client B then
// completes a PUT of a new value, and A issues a second GET. The real seq
// filter discards the stale response and waits for the re-executed one; the
// mutant accepts the late duplicate, so the second GET returns a value that
// a PUT completed before its invocation had overwritten — exactly the
// violation Wing & Gong rejects.
Scenario LateDuplicateScenario(bool mutant) {
  return [mutant](ScenarioRun& run) -> Outcome {
    sim::Engine& eng = run.engine;
    rdma::Fabric fabric(eng);
    rdma::Node& server_node = fabric.AddNode("server");
    kv::BucketTable table(64);
    HistoryRecorder rec;
    table.set_history_recorder(&rec);

    rfp::RpcServer server(fabric, server_node, 1);
    server.RegisterHandler(
        kKvGet, [&table](const rfp::HandlerContext&, std::span<const std::byte> req,
                         std::span<std::byte> resp) {
          auto value = table.Get(req);
          resp[0] = std::byte{value.has_value() ? uint8_t{1} : uint8_t{0}};
          size_t n = 0;
          if (value.has_value()) {
            n = value->size();
            std::memcpy(resp.data() + 1, value->data(), n);
          }
          return rfp::HandlerResult{1 + n, sim::Micros(60)};
        });
    server.RegisterHandler(
        kKvPut, [&table](const rfp::HandlerContext&, std::span<const std::byte> req,
                         std::span<std::byte> resp) {
          const size_t klen = std::to_integer<size_t>(req[0]);
          table.Put(req.subspan(1, klen), req.subspan(1 + klen));
          resp[0] = std::byte{1};
          return rfp::HandlerResult{1, sim::Micros(3)};
        });

    rfp::RfpOptions copts;
    copts.force_mode = rfp::RfpOptions::ForceMode::kForceFetch;
    rdma::Node& node_a = fabric.AddNode("A");
    rdma::Node& node_b = fabric.AddNode("B");
    rfp::Channel* ch_a = server.AcceptChannel(node_a, copts, 0);
    rfp::Channel* ch_b = server.AcceptChannel(node_b, copts, 0);
    if (mutant) {
      ch_a->set_unsafe_accept_stale_seq(true);
    }
    server.Start();

    auto put = [](rfp::RpcClient& client, HistoryRecorder& recorder, std::string key,
                  std::string value) -> sim::Task<void> {
      std::string req;
      req.push_back(static_cast<char>(key.size()));
      req += key + value;
      const uint64_t hid = recorder.OnInvoke(OpKind::kPut, key, value);
      std::vector<std::byte> resp(64);
      co_await client.Call(kKvPut, AsBytes(req), resp);
      recorder.OnPutResponse(hid);
    };

    // B: PUT k=v1 at t=0, PUT k=v2 at t=40us.
    eng.Spawn([](sim::Engine& engine, rfp::Channel* channel, HistoryRecorder* recorder,
                 decltype(put)& do_put) -> sim::Task<void> {
      rfp::RpcClient client(channel);
      co_await do_put(client, *recorder, "k", "v1");
      co_await engine.Sleep(sim::Micros(40) - engine.now());
      co_await do_put(client, *recorder, "k", "v2");
    }(eng, ch_b, &rec, put));

    // A: GET#1 at t=15us with a 15us deadline (abandoned mid-compute), then
    // GET#2 at t=150us, well after B's second PUT completed.
    std::string get2_error;
    eng.Spawn([](sim::Engine& engine, rfp::Channel* channel, HistoryRecorder* recorder,
                 std::string* error) -> sim::Task<void> {
      rfp::RpcClient client(channel);
      std::vector<std::byte> resp(256);
      co_await engine.Sleep(sim::Micros(15));
      const uint64_t h1 = recorder->OnInvoke(OpKind::kGet, "k");
      try {
        const size_t n = co_await client.Call(
            kKvGet, AsBytes("k"), resp,
            rfp::CallOptions{.deadline_ns = engine.now() + sim::Micros(15)});
        recorder->OnGetResponse(h1, resp[0] == std::byte{1},
                                ToString({resp.data() + 1, n - 1}));
      } catch (const rfp::DeadlineExceeded&) {
        // Abandoned: h1 stays pending, which the oracle models as
        // apply-anytime-or-never.
      }
      co_await engine.Sleep(sim::Micros(150) - engine.now());
      const uint64_t h2 = recorder->OnInvoke(OpKind::kGet, "k");
      try {
        const size_t n = co_await client.Call(
            kKvGet, AsBytes("k"), resp,
            rfp::CallOptions{.deadline_ns = engine.now() + sim::Micros(400)});
        recorder->OnGetResponse(h2, resp[0] == std::byte{1},
                                ToString({resp.data() + 1, n - 1}));
      } catch (const rfp::DeadlineExceeded&) {
        *error = "second GET exceeded its deadline";
      }
    }(eng, ch_a, &rec, &get2_error));

    eng.RunUntil(sim::Millis(1));
    server.Stop();
    if (!get2_error.empty()) {
      return Outcome::Fail(get2_error);
    }
    rec.CheckStrict(TraceOf(eng));  // throws LinearizabilityError on violation
    return Outcome::Pass(rec.completed_ops());
  };
}

// Multicore server, two workers, one pipelined (window=2) channel owned by
// worker 0. The fault plan crashes worker 0 while its visit is suspended
// mid-handler; worker 1's orphan-claim scan runs against the busy fence. The
// real fence defers the claim until the visit finishes. The mutant claims
// (and sweeps) the fenced channel: the thief's recv moves the channel's
// shared slot cursor while the victim is still computing, so the victim's
// ServerSend lands in the wrong slot — the client sees call B answered with
// call A's payload, or a call that never completes.
Scenario StealBusyScenario(bool mutant) {
  return [mutant](ScenarioRun& run) -> Outcome {
    sim::Engine& eng = run.engine;
    rdma::FabricConfig fc;
    fc.nic.cores = 4;
    fc.nic.nic_station_cores = 2;
    rdma::Fabric fabric(eng, fc);
    rdma::Node& server_node = fabric.AddNode("server");
    rdma::Node& client_node = fabric.AddNode("client");

    rfp::ServerOptions so;
    so.multicore = true;  // work_stealing defaults on
    rfp::RpcServer server(fabric, server_node, 2, so);
    if (mutant) {
      server.set_unsafe_steal_busy_channels(true);
    }
    server.RegisterHandler(kEcho, [](const rfp::HandlerContext&,
                                     std::span<const std::byte> req,
                                     std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      return rfp::HandlerResult{req.size(), sim::Micros(30)};
    });
    rfp::RfpOptions copts;
    copts.window = 2;
    rfp::Channel* ch = server.AcceptChannel(client_node, copts, 0);
    server.Start();

    fault::FaultInjector injector(fabric);
    injector.BindServer(server_node.id(), &server);
    injector.Arm(run.plan);

    std::string failure;
    bool done = false;
    eng.Spawn([](sim::Engine& engine, rfp::Channel* channel, std::string* error,
                 bool* finished) -> sim::Task<void> {
      rfp::RpcClient client(channel);
      const rfp::CallOptions opts{.deadline_ns = engine.now() + sim::Millis(1)};
      auto ha = co_await client.SubmitCall(kEcho, AsBytes("call-A"), opts);
      auto hb = co_await client.SubmitCall(kEcho, AsBytes("call-B"), opts);
      std::vector<std::byte> resp_a(64);
      std::vector<std::byte> resp_b(64);
      try {
        const size_t na = co_await client.AwaitCall(ha, resp_a);
        const size_t nb = co_await client.AwaitCall(hb, resp_b);
        if (ToString({resp_a.data(), na}) != "call-A") {
          *error = "call A answered with '" + ToString({resp_a.data(), na}) + "'";
        } else if (ToString({resp_b.data(), nb}) != "call-B") {
          *error = "call B answered with '" + ToString({resp_b.data(), nb}) + "'";
        }
      } catch (const rfp::DeadlineExceeded&) {
        *error = "a pipelined call never completed (stranded slot)";
      }
      *finished = true;
    }(eng, ch, &failure, &done));

    eng.RunUntil(sim::Millis(3));
    server.Stop();
    if (!done) {
      return Outcome::Fail("client actor wedged");
    }
    if (!failure.empty()) {
      return Outcome::Fail(failure);
    }
    return Outcome::Pass(server.channel_steals() * 17 + server.requests_served());
  };
}

std::vector<fault::FaultPlan> StealCrashPlans() {
  std::vector<fault::FaultPlan> plans;
  for (const sim::Time at : {sim::Micros(6), sim::Micros(10), sim::Micros(20),
                             sim::Micros(40)}) {
    fault::FaultPlan plan;
    plan.ServerCrash(at, /*node=*/0, /*thread=*/0, sim::Millis(2));
    plans.push_back(plan);
  }
  return plans;
}

// Zero-copy GET publishes an indirect descriptor; the store must copy-on-
// write any PUT racing the pinned entry. The mutant store overwrites in
// place, and the strict-mode race detector throws race.fetch_store at the
// client's entry READ — with the failing schedule appended to the message
// by check::FabricChecker whenever the run deviated from FIFO.
Scenario CowPinnedScenario(bool mutant) {
  return [mutant](ScenarioRun& run) -> Outcome {
    check::ScopedMode strict(check::Mode::kStrict);
    sim::Engine& eng = run.engine;
    rdma::Fabric fabric(eng);
    rdma::Node& client_node = fabric.AddNode("client");
    rdma::Node& server_node = fabric.AddNode("server");
    rfp::Channel channel(fabric, client_node, server_node, rfp::RfpOptions{});
    kv::BucketTable table(64, server_node);
    if (mutant) {
      table.set_unsafe_inplace_put(true);
    }

    eng.Spawn([](sim::Engine& engine, rfp::Channel* ch,
                 kv::BucketTable* store) -> sim::Task<void> {
      store->Put(AsBytes("k"), AsBytes("AAAA"));
      std::vector<std::byte> buf(16384);
      size_t n = 0;
      while (!ch->TryServerRecv(buf, &n)) {
        co_await engine.Sleep(sim::Nanos(200));
      }
      auto pinned = store->GetPinned(AsBytes("k"));
      if (!pinned.has_value()) {
        co_return;
      }
      rfp::ZeroCopyRef ref;
      ref.rkey = pinned->rkey;
      ref.offset = pinned->offset;
      ref.len = pinned->len;
      ref.epoch = pinned->epoch;
      ref.pin = std::move(pinned->pin);
      co_await ch->ServerSendZeroCopy({}, ref);
      // The race under test: the descriptor is published and unfetched, and
      // the store processes a PUT for the same key. Real code copies on
      // write; the mutant scribbles the pinned bytes.
      store->Put(AsBytes("k"), AsBytes("BBBB"));
    }(eng, &channel, &table));

    std::string got;
    eng.Spawn([](sim::Engine& engine, rfp::Channel* ch, std::string* out) -> sim::Task<void> {
      std::vector<std::byte> resp(16384);
      co_await ch->ClientSend(AsBytes("get k"));
      // Let the server publish AND overwrite before the entry fetch, so the
      // READ snapshots whatever the PUT left behind.
      co_await engine.Sleep(sim::Micros(20));
      const size_t n = co_await ch->ClientRecv(resp);
      out->assign(reinterpret_cast<const char*>(resp.data()), n);
    }(eng, &channel, &got));

    eng.Run();  // strict mode: race.fetch_store throws ViolationError here
    if (got != "AAAA") {
      return Outcome::Fail("pinned GET returned '" + got + "', expected pre-PUT 'AAAA'");
    }
    return Outcome::Pass(table.stats().cow_puts);
  };
}

// Adaptive channels tuned to switch to server-reply on the first slow call
// (R=1, hysteresis=1). Each lane's handler runs a different process time, so
// across lanes the server's ServerSend brackets the instant the client's
// mode-switch WRITE lands: some lanes publish while the server still sees
// remote-fetch — the response is a local store the switched client will
// never fetch. The sweep's resend safety net completes those calls; the
// mutant disables it and the stranded lanes die on their deadlines.
Scenario SwitchRaceScenario(bool mutant) {
  return [mutant](ScenarioRun& run) -> Outcome {
    sim::Engine& eng = run.engine;
    rdma::Fabric fabric(eng);
    rdma::Node& server_node = fabric.AddNode("server");
    constexpr int kLanes = 8;
    rfp::RpcServer server(fabric, server_node, kLanes);
    server.RegisterHandler(kEcho, [](const rfp::HandlerContext&,
                                     std::span<const std::byte> req,
                                     std::span<std::byte> resp) {
      std::memcpy(resp.data(), req.data(), req.size());
      uint32_t process_ns = 0;
      std::memcpy(&process_ns, req.data(), sizeof(process_ns));
      return rfp::HandlerResult{req.size(), static_cast<sim::Time>(process_ns)};
    });

    rfp::RfpOptions copts;
    copts.retry_threshold = 1;
    copts.slow_calls_before_switch = 1;

    std::vector<rfp::Channel*> channels;
    for (int lane = 0; lane < kLanes; ++lane) {
      rdma::Node& node = fabric.AddNode("client" + std::to_string(lane));
      rfp::Channel* ch = server.AcceptChannel(node, copts, lane);
      if (mutant) {
        ch->set_unsafe_switch_race(true);
      }
      channels.push_back(ch);
    }
    server.Start();

    std::vector<std::string> failures(kLanes);
    int completed = 0;
    for (int lane = 0; lane < kLanes; ++lane) {
      const uint32_t process_ns = 500 + static_cast<uint32_t>(lane) * 700;
      eng.Spawn([](sim::Engine& engine, rfp::Channel* channel, uint32_t p,
                   std::string* error, int* done) -> sim::Task<void> {
        rfp::RpcClient client(channel);
        std::vector<std::byte> req(16);
        std::memcpy(req.data(), &p, sizeof(p));
        std::vector<std::byte> resp(64);
        try {
          const size_t n = co_await client.Call(
              kEcho, req, resp,
              rfp::CallOptions{.deadline_ns = engine.now() + sim::Millis(1)});
          if (n != req.size() || std::memcmp(resp.data(), req.data(), n) != 0) {
            *error = "echo payload mismatch";
          }
        } catch (const rfp::DeadlineExceeded&) {
          *error = "call stranded after mode switch (deadline exceeded)";
        }
        ++*done;
      }(eng, channels[static_cast<size_t>(lane)], process_ns,
        &failures[static_cast<size_t>(lane)], &completed));
    }

    eng.RunUntil(sim::Millis(3));
    server.Stop();
    if (completed != kLanes) {
      return Outcome::Fail("a lane never finished");
    }
    uint64_t switched = 0;
    std::string failure;
    for (int lane = 0; lane < kLanes; ++lane) {
      switched += channels[static_cast<size_t>(lane)]->stats().switches_to_reply;
      if (!failures[static_cast<size_t>(lane)].empty() && failure.empty()) {
        failure = "lane " + std::to_string(lane) + ": " +
                  failures[static_cast<size_t>(lane)];
      }
    }
    if (!failure.empty()) {
      return Outcome::Fail(failure);
    }
    return Outcome::Pass(switched);
  };
}

// Replicated two-node Jakiro cluster under a whole-node primary kill
// (docs/replication.md). Real path: lease expiry promotes the backup at
// epoch 2 and demotes the killed primary's gate in the same step, so the
// restarted node fences the stale-epoch writer with a redirect and the
// client-visible history stays linearizable. The mutant models a promotion
// that forgot the demotion: the resurrected primary still serves epoch 1,
// accepts and acks a write the new leader never sees, and the next read
// returns the overwritten value — the per-key oracle rejects the history,
// and in strict mode the coordinator's resurrection report trips the
// checker's epoch-monotonicity invariant first.
Scenario SplitBrainScenario(bool mutant) {
  return [mutant](ScenarioRun& run) -> Outcome {
    sim::Engine& eng = run.engine;
    rdma::Fabric fabric(eng);

    repl::ClusterConfig cfg = repl::DefaultClusterConfig();
    cfg.kv.server_threads = 2;
    cfg.kv.buckets_per_partition = 64;
    cfg.repl.lease_interval_ns = sim::Micros(150);
    cfg.repl.probe_interval_ns = sim::Micros(20);
    cfg.repl.channel.fetch_timeout_ns = sim::Micros(50);
    repl::Cluster cluster(fabric, cfg);
    if (mutant) {
      cluster.coordinator().set_unsafe_skip_demotion(true);
    }

    rdma::Node& client_node = fabric.AddNode("client");
    rdma::Node& stale_node = fabric.AddNode("stale");
    repl::Client client(cluster, client_node);
    kv::JakiroClient stale(cluster.primary(), stale_node);
    HistoryRecorder rec;
    client.set_history_recorder(&rec);
    stale.set_history_recorder(&rec);
    // The stale writer is pinned at the pre-promotion epoch: it never
    // re-resolves the leader, modeling a client that slept through the
    // failover.
    for (int t = 0; t < stale.num_channels(); ++t) {
      stale.channel(t)->set_request_epoch(1);
    }
    cluster.Start();

    fault::FaultInjector injector(fabric);
    injector.BindServer(cluster.primary().node().id(), &cluster.primary().rpc());
    fault::FaultPlan plan;
    plan.ServerCrashAll(sim::Micros(300), cluster.primary().node().id(), sim::Micros(700));
    injector.Arm(plan);

    std::string failure;
    bool done = false;
    eng.Spawn([](sim::Engine& engine, repl::Cluster* cl, repl::Client* c, kv::JakiroClient* st,
                 std::string* error, bool* finished) -> sim::Task<void> {
      try {
        co_await c->Put(AsBytes("k"), AsBytes("v1"));
        // The kill lands at 300us; wait for the gate to flip so the second
        // PUT completes in one attempt (a retried PUT would leave pending
        // duplicate invocations the oracle could use to absorb the
        // violation).
        while (cl->leader_index() == 0 && engine.now() < sim::Micros(900)) {
          co_await engine.Sleep(sim::Micros(10));
        }
        if (cl->leader_index() == 0) {
          *error = "backup was never promoted";
          *finished = true;
          co_return;
        }
        c->Refresh();
        co_await c->Put(AsBytes("k"), AsBytes("v2"));
        // The old primary restarts at t=1ms; give it headroom, then write
        // k=v3 through the stale-epoch client.
        if (engine.now() < sim::Micros(1100)) {
          co_await engine.Sleep(sim::Micros(1100) - engine.now());
        }
        try {
          co_await st->Put(AsBytes("k"), AsBytes("v3"));
        } catch (const rfp::Redirected&) {
          // Real path: the demoted gate fences the stale writer; its PUT
          // stays pending (apply-never is a legal linearization).
        } catch (const rfp::DeadlineExceeded&) {
        }
        std::vector<std::byte> buf(256);
        co_await c->Get(AsBytes("k"), buf);
      } catch (const std::exception& e) {
        *error = e.what();
      }
      *finished = true;
    }(eng, &cluster, &client, &stale, &failure, &done));

    eng.RunUntil(sim::Millis(4));
    cluster.Stop();
    if (!done) {
      return Outcome::Fail("client actor wedged");
    }
    if (!failure.empty()) {
      return Outcome::Fail(failure);
    }
    rec.CheckStrict(TraceOf(eng));  // throws LinearizabilityError on violation
    return Outcome::Pass(rec.completed_ops() * 31 + cluster.coordinator().promotions());
  };
}

std::vector<Entry> Entries() {
  return {
      {"late_duplicate", &LateDuplicateScenario, nullptr},
      {"steal_busy", &StealBusyScenario, &StealCrashPlans},
      {"cow_pinned", &CowPinnedScenario, nullptr},
      {"switch_race", &SwitchRaceScenario, nullptr},
      {"split_brain", &SplitBrainScenario, nullptr},
  };
}

}  // namespace corpus
}  // namespace explore
