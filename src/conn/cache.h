// LRU channel cache (docs/connections.md).
//
// Dedicated rfp::Channels give the best per-call latency but cost two RC QPs
// and two ring spans each, so a client fleet cannot hold one per (server,
// thread) forever. The cache bounds that footprint: leases hand out cached
// channels MRU-first, and when capacity (channel count or registered bytes)
// is exceeded the least-recently-used idle channel is destroyed — its rings
// return to the node pools and its QPs retire, so the *next* lease for that
// key re-establishes through pool-backed AcceptChannel with zero MR
// registrations (the churn contract, tests/mem/churn_test.cc).
//
// Eviction under load reuses the PR-2 reconnect machinery: when every cached
// channel is pinned by a live lease, the LRU victim is detached
// (Channel::Detach — both QPs error out, exactly like a fault-injected
// connection loss) and destruction is deferred until its last lease drops.
// In-flight calls on the victim observe a reconnect and re-issue
// idempotently; nothing above the lease notices.
//
// The cache key is (server, client node, server thread). Channel options are
// not part of the key: callers of one cache must use consistent RfpOptions
// per key, which Connector guarantees.

#ifndef SRC_CONN_CACHE_H_
#define SRC_CONN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/rdma/node.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"

namespace conn {

class ChannelCache;

struct CacheOptions {
  int max_channels = 64;            // cached channels; 0 = unbounded
  size_t max_registered_bytes = 0;  // summed ring footprint; 0 = unbounded
};

// Move-only RAII handle on a channel + RpcClient stub. Cached leases pin
// their cache entry (a pinned entry cannot be destroyed, only detached);
// direct leases own their stub and leave the server-owned channel alone on
// release. Must not outlive the ChannelCache / Connector that produced it.
class ChannelLease {
 public:
  ChannelLease() = default;
  ChannelLease(ChannelLease&& other) noexcept;
  ChannelLease& operator=(ChannelLease&& other) noexcept;
  ~ChannelLease() { Release(); }

  ChannelLease(const ChannelLease&) = delete;
  ChannelLease& operator=(const ChannelLease&) = delete;

  bool valid() const { return channel_ != nullptr; }
  rfp::Channel* channel() const { return channel_; }
  rfp::RpcClient* stub() const { return stub_; }

  // Drops the pin (cached) or the owned stub (direct). Idempotent.
  void Release();

 private:
  friend class ChannelCache;
  friend class Connector;

  rfp::Channel* channel_ = nullptr;
  rfp::RpcClient* stub_ = nullptr;
  std::unique_ptr<rfp::RpcClient> owned_stub_;  // direct (uncached) mode only
  ChannelCache* cache_ = nullptr;
  void* entry_ = nullptr;  // ChannelCache::Entry, opaque to the lease
};

class ChannelCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;             // each miss is one AcceptChannel
    uint64_t evictions = 0;          // idle + detach evictions
    uint64_t detach_evictions = 0;   // victims evicted while pinned (Detach)
  };

  explicit ChannelCache(CacheOptions options = {});

  // Destroys every cached channel (all leases must already be released) and
  // flushes conn.cache.* counters into the default metrics registry.
  ~ChannelCache();

  ChannelCache(const ChannelCache&) = delete;
  ChannelCache& operator=(const ChannelCache&) = delete;

  // Returns a pinned lease on the cached channel for (server, client,
  // thread), establishing one on miss. Establishing may first evict the LRU
  // idle channel (or detach the LRU pinned one) to stay within capacity.
  ChannelLease Get(rfp::RpcServer& server, rdma::Node& client,
                   const rfp::RfpOptions& options, int thread);

  // Forces the entry for (server, client, thread) out of the cache: idle
  // entries are destroyed immediately, pinned entries are detached and
  // destroyed when their last lease releases. Returns false when the key is
  // not cached. Test hook for eviction-under-load composition.
  bool Evict(rfp::RpcServer& server, rdma::Node& client, int thread);

  size_t size() const { return entries_.size(); }
  size_t registered_bytes() const { return registered_bytes_; }
  const Stats& stats() const { return stats_; }
  const CacheOptions& options() const { return options_; }

 private:
  friend class ChannelLease;

  struct Key {
    rfp::RpcServer* server = nullptr;
    rdma::Node* client = nullptr;
    int thread = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    rfp::Channel* channel = nullptr;
    std::unique_ptr<rfp::RpcClient> stub;
    size_t footprint_bytes = 0;
    int pins = 0;
    bool doomed = false;  // detached; destroy when pins drops to 0
  };

  ChannelLease MakeLease(Entry& entry);
  void Release(void* opaque_entry);
  // Evicts until count/byte capacity admits one more entry of
  // `incoming_bytes`: LRU idle victims are destroyed, and when everything is
  // pinned the LRU victim is detached instead.
  void TrimToCapacity(size_t incoming_bytes);
  void EvictIdle(std::list<Entry>::iterator it);
  void Doom(std::list<Entry>::iterator it);
  void DestroyEntry(Entry& entry);

  CacheOptions options_;
  std::list<Entry> entries_;  // MRU at front; node addresses are stable
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::list<Entry> doomed_;   // detached, waiting for their last Release
  size_t registered_bytes_ = 0;
  Stats stats_;
};

}  // namespace conn

#endif  // SRC_CONN_CACHE_H_
