// Pooled-QP connection tier (docs/connections.md).
//
// The RDMAvisor observation: per-client RC connections make QP state and
// registered memory grow linearly with clients, so a million-client fabric
// needs the data plane multiplexed over shared resources. This tier serves
// M >> N logical clients through N server UD QPs:
//
//   * SRQ-style shared receive — all N QPs draw receive slots from one
//     shared, pool-backed slot arena (a hot QP drains more slots, exactly
//     what a hardware SRQ buys), so receive memory is sized for the node's
//     aggregate burst, not per client.
//   * Connection-id demux — each logical client holds a 24-bit cid assigned
//     at connect time and carried in the formerly-spare RequestHeader bits
//     (wire::PackPooledRequest); the server routes replies by cid entry, not
//     by QP, so QP count stays N however many clients connect.
//   * Setup fast path (the Swift argument: control plane must be fast too) —
//     connect is one datagram round trip against pre-registered pool memory;
//     no QP creation, no MR registration, no per-client server allocation
//     beyond one address-table entry.
//
// Requests dispatch through the owning RpcServer's handler table
// (RpcServer::FindHandler), so one registered handler serves dedicated
// channels and pooled clients alike. The transport is unreliable: clients
// carry a sequence tag, retransmit on timeout, and filter duplicate replies;
// the server executes every arrival (handlers are idempotent by the RFP
// contract).
//
// Wire format:
//   request   [rfp::RequestHeader (16 B, cid in mode/slot/size bits)]
//             [rpc_id u16][body]
//   response  [rfp::ResponseHeader (8 B, seq echo)][payload]
// Control ids kRpcConnect / kRpcDisconnect ride the same format; connect's
// body is [client_node u32][client_qpn u32] (the reply address — cid 0 has
// no entry yet) and its response body is [cid u32].

#ifndef SRC_CONN_POOLED_H_
#define SRC_CONN_POOLED_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/mem/pool.h"
#include "src/rdma/fabric.h"
#include "src/rfp/rpc.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"

namespace conn {

// Reserved rpc ids of the connection-control plane. Applications own the low
// id space; anything >= 0xfff0 is the tier's.
constexpr uint16_t kRpcConnect = 0xfff0;
constexpr uint16_t kRpcDisconnect = 0xfff1;

struct PooledOptions {
  int qps = 4;                 // server UD QPs (the "N" of N QPs, M clients)
  int recv_slots = 256;        // shared receive slots across all server QPs
  int client_recv_slots = 8;   // posted RECVs per client QP
  uint32_t max_message_bytes = 8192;
  sim::Time server_poll_ns = 200;   // server CQ poll cadence when idle
  sim::Time client_poll_ns = 200;   // client response poll cadence
  sim::Time retry_timeout_ns = 20'000;
  int max_retransmits = 10;
  sim::Time dispatch_cpu_ns = 150;  // per-request unpack/dispatch/pack cost
};

// Throws std::invalid_argument on inconsistent options (qps < 1, fewer
// receive slots than QPs, messages too large for the pooled 16-bit size
// field, ...).
void ValidateOptions(const PooledOptions& options);

// The server side: N UD QPs + one shared receive-slot arena, dispatching
// into `rpc`'s handler table. Does not touch `rpc`'s channel sweep — the
// pooled path and dedicated channels serve concurrently from one handler
// registration.
class PooledServer {
 public:
  PooledServer(rdma::Fabric& fabric, rfp::RpcServer& rpc, PooledOptions options = {});

  // Flushes conn.pooled.* counters into the default metrics registry,
  // labeled {node}, and frees the slot arena back to the node pool.
  ~PooledServer();

  PooledServer(const PooledServer&) = delete;
  PooledServer& operator=(const PooledServer&) = delete;

  void Start();
  void Stop() { stop_ = true; }

  int num_qps() const { return static_cast<int>(qps_.size()); }
  // Datagram address of QP `qp_index`, what clients send to.
  rdma::AddressHandle address(int qp_index) const;
  // Round-robin QP assignment for new clients.
  int PickQp() { return next_qp_++ % num_qps(); }

  rdma::Node& node() { return node_; }
  const PooledOptions& options() const { return options_; }

  // Logical connections currently live (cid entries in the demux table).
  size_t live_connections() const { return clients_.size(); }
  uint64_t connects() const { return connects_; }
  uint64_t disconnects() const { return disconnects_; }
  uint64_t requests_served() const { return requests_served_; }
  // Requests dropped: unknown cid (stale/closed connection) or malformed.
  uint64_t dropped_requests() const { return dropped_requests_; }
  // Datagrams dropped because no receive slot was posted (burst overflow).
  uint64_t recv_overflows() const;

 private:
  struct ClientEntry {
    rdma::AddressHandle reply;  // where this cid's responses go
  };

  sim::Task<void> ServeLoop(int qp_index);
  // Posts free shared slots onto `qp_index` up to its fair-share target.
  // Called every loop iteration, so a QP that drains faster re-arms with
  // more of the shared pool — the SRQ effect.
  void TopUpRecv(int qp_index);
  size_t slot_bytes() const;
  size_t rx_offset(uint32_t slot) const;
  size_t tx_offset(int qp_index) const;
  uint32_t AssignCid(const rdma::AddressHandle& reply);

  rdma::Fabric& fabric_;
  rfp::RpcServer& rpc_;
  rdma::Node& node_;
  PooledOptions options_;
  bool stop_ = false;
  bool started_ = false;
  std::vector<rdma::QueuePair*> qps_;
  std::shared_ptr<mem::Pool> pool_;
  // One pool span: [recv_slots shared slots][one tx slot per QP]. Receive
  // slots are a shared free list; wr_id = slot index.
  mem::Span arena_;
  std::vector<uint32_t> free_slots_;
  std::unordered_map<uint32_t, ClientEntry> clients_;
  uint32_t next_cid_ = 0;
  int next_qp_ = 0;
  uint64_t connects_ = 0;
  uint64_t disconnects_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t dropped_requests_ = 0;
};

// One logical client endpoint. A single PooledClient (one UD QP, one pool
// span) can play many logical connections sequentially — Connect, calls,
// Disconnect, repeat — which is how the scale bench drives 10^6 logical
// clients through a handful of driver actors.
class PooledClient {
 public:
  struct Stats {
    uint64_t connects = 0;
    uint64_t disconnects = 0;
    uint64_t calls = 0;
    uint64_t sends = 0;       // includes retransmits
    uint64_t retransmits = 0;
    uint64_t duplicates = 0;  // late replies to already-completed seqs
    uint64_t failures = 0;    // calls that exhausted max_retransmits
  };

  // The client must use the same PooledOptions geometry as the server.
  PooledClient(rdma::Fabric& fabric, rdma::Node& node, PooledServer& server,
               PooledOptions options = {});

  // Flushes conn.pooled client counters and the connect-latency histogram
  // into the default metrics registry, labeled {client}, and frees the slot
  // span back to the node pool.
  ~PooledClient();

  PooledClient(const PooledClient&) = delete;
  PooledClient& operator=(const PooledClient&) = delete;

  // Obtains a connection id from the server — one datagram round trip, no
  // MR work (the setup fast path). Throws when already connected.
  sim::Task<void> Connect();

  // Releases the connection id (acknowledged). No-op when not connected.
  sim::Task<void> Disconnect();

  // Invokes `rpc_id` through the pooled path; returns the response payload
  // size. Throws std::runtime_error after max_retransmits timeouts and
  // std::logic_error when not connected.
  sim::Task<size_t> Call(uint16_t rpc_id, std::span<const std::byte> request,
                         std::span<std::byte> response);

  bool connected() const { return cid_ != 0; }
  uint32_t cid() const { return cid_; }
  const Stats& stats() const { return stats_; }
  const sim::Histogram& connect_latency() const { return connect_latency_; }

 private:
  size_t slot_bytes() const;
  size_t tx_off() const;
  void RepostRecv(uint64_t wr_id);
  // One request/response exchange under the current cid (retransmit +
  // duplicate filter). The request bytes must already be staged in the tx
  // slot after the header.
  sim::Task<size_t> Transact(uint32_t body_bytes, std::span<std::byte> response);

  rdma::Fabric& fabric_;
  rdma::Node& node_;
  PooledServer& server_;
  PooledOptions options_;
  rdma::AddressHandle server_addr_;
  rdma::QueuePair* qp_;
  std::shared_ptr<mem::Pool> pool_;
  mem::Span span_;  // [client_recv_slots slots][tx slot]
  uint32_t cid_ = 0;
  uint16_t next_seq_ = 0;
  Stats stats_;
  sim::Histogram connect_latency_;
};

}  // namespace conn

#endif  // SRC_CONN_POOLED_H_
