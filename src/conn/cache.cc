#include "src/conn/cache.h"

#include <cassert>
#include <functional>
#include <utility>

#include "src/obs/metrics.h"
#include "src/rfp/channel.h"

namespace conn {

// ---- ChannelLease -------------------------------------------------------------

ChannelLease::ChannelLease(ChannelLease&& other) noexcept
    : channel_(other.channel_),
      stub_(other.stub_),
      owned_stub_(std::move(other.owned_stub_)),
      cache_(other.cache_),
      entry_(other.entry_) {
  other.channel_ = nullptr;
  other.stub_ = nullptr;
  other.cache_ = nullptr;
  other.entry_ = nullptr;
}

ChannelLease& ChannelLease::operator=(ChannelLease&& other) noexcept {
  if (this != &other) {
    Release();
    channel_ = other.channel_;
    stub_ = other.stub_;
    owned_stub_ = std::move(other.owned_stub_);
    cache_ = other.cache_;
    entry_ = other.entry_;
    other.channel_ = nullptr;
    other.stub_ = nullptr;
    other.cache_ = nullptr;
    other.entry_ = nullptr;
  }
  return *this;
}

void ChannelLease::Release() {
  owned_stub_.reset();
  if (cache_ != nullptr && entry_ != nullptr) {
    cache_->Release(entry_);
  }
  channel_ = nullptr;
  stub_ = nullptr;
  cache_ = nullptr;
  entry_ = nullptr;
}

// ---- ChannelCache -------------------------------------------------------------

size_t ChannelCache::KeyHash::operator()(const Key& key) const {
  size_t h = std::hash<const void*>{}(key.server);
  h ^= std::hash<const void*>{}(key.client) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= std::hash<int>{}(key.thread) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

ChannelCache::ChannelCache(CacheOptions options) : options_(options) {}

ChannelCache::~ChannelCache() {
  for (Entry& entry : entries_) {
    DestroyEntry(entry);
  }
  // Doomed entries still pinned at this point mean a lease outlived the
  // cache — a contract violation; destroy anyway rather than leak.
  for (Entry& entry : doomed_) {
    DestroyEntry(entry);
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("conn.cache.hits", {})->Add(stats_.hits);
  reg.GetCounter("conn.cache.misses", {})->Add(stats_.misses);
  if (stats_.evictions > 0) {
    reg.GetCounter("conn.cache.evictions", {})->Add(stats_.evictions);
  }
  if (stats_.detach_evictions > 0) {
    reg.GetCounter("conn.cache.detach_evictions", {})->Add(stats_.detach_evictions);
  }
}

ChannelLease ChannelCache::MakeLease(Entry& entry) {
  ++entry.pins;
  ChannelLease lease;
  lease.channel_ = entry.channel;
  lease.stub_ = entry.stub.get();
  lease.cache_ = this;
  lease.entry_ = &entry;
  return lease;
}

ChannelLease ChannelCache::Get(rfp::RpcServer& server, rdma::Node& client,
                               const rfp::RfpOptions& options, int thread) {
  const Key key{&server, &client, thread};
  auto idx = index_.find(key);
  if (idx != index_.end()) {
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, idx->second);
    return MakeLease(*idx->second);
  }
  ++stats_.misses;
  // Pool-backed establishment: AcceptChannel draws its rings from the node
  // pools, so a re-establish after eviction reuses the freed MRs and the
  // fabric registration census stays flat.
  rfp::Channel* channel = server.AcceptChannel(client, options, thread);
  const size_t bytes = channel->registered_footprint_bytes();
  TrimToCapacity(bytes);
  entries_.push_front(Entry{key, channel, std::make_unique<rfp::RpcClient>(channel), bytes,
                            /*pins=*/0, /*doomed=*/false});
  index_[key] = entries_.begin();
  registered_bytes_ += bytes;
  return MakeLease(entries_.front());
}

bool ChannelCache::Evict(rfp::RpcServer& server, rdma::Node& client, int thread) {
  const auto idx = index_.find(Key{&server, &client, thread});
  if (idx == index_.end()) {
    return false;
  }
  if (idx->second->pins > 0) {
    Doom(idx->second);
  } else {
    EvictIdle(idx->second);
  }
  return true;
}

void ChannelCache::TrimToCapacity(size_t incoming_bytes) {
  const auto over = [&] {
    const bool count_over =
        options_.max_channels > 0 &&
        entries_.size() + 1 > static_cast<size_t>(options_.max_channels);
    const bool bytes_over = options_.max_registered_bytes > 0 &&
                            registered_bytes_ + incoming_bytes > options_.max_registered_bytes;
    return count_over || bytes_over;
  };
  while (over() && !entries_.empty()) {
    // LRU-most idle entry: the list runs MRU -> LRU, so keep the last
    // unpinned one seen.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->pins == 0) {
        victim = it;
      }
    }
    if (victim != entries_.end()) {
      EvictIdle(victim);
      continue;
    }
    // Everything is pinned: detach the LRU victim. Its leases ride the
    // reconnect path; the entry is destroyed on their last Release.
    Doom(std::prev(entries_.end()));
  }
}

void ChannelCache::EvictIdle(std::list<Entry>::iterator it) {
  registered_bytes_ -= it->footprint_bytes;
  index_.erase(it->key);
  ++stats_.evictions;
  DestroyEntry(*it);
  entries_.erase(it);
}

void ChannelCache::Doom(std::list<Entry>::iterator it) {
  registered_bytes_ -= it->footprint_bytes;
  index_.erase(it->key);
  ++stats_.evictions;
  ++stats_.detach_evictions;
  it->doomed = true;
  it->channel->Detach();
  doomed_.splice(doomed_.begin(), entries_, it);
}

void ChannelCache::Release(void* opaque_entry) {
  Entry* entry = static_cast<Entry*>(opaque_entry);
  assert(entry->pins > 0);
  --entry->pins;
  if (!entry->doomed || entry->pins > 0) {
    return;
  }
  for (auto it = doomed_.begin(); it != doomed_.end(); ++it) {
    if (&*it == entry) {
      DestroyEntry(*it);
      doomed_.erase(it);
      return;
    }
  }
}

void ChannelCache::DestroyEntry(Entry& entry) {
  // The stub references the channel in its destructor (metrics flush), so it
  // must go first; CloseChannel then destroys the channel, returning its
  // rings to the pools without deregistering.
  entry.stub.reset();
  entry.key.server->CloseChannel(entry.channel);
  entry.channel = nullptr;
}

}  // namespace conn
