#include "src/conn/connector.h"

#include <utility>

#include "src/rfp/channel.h"

namespace conn {

Connector::Connector(ConnectorOptions options) : options_(options) {
  if (options_.mode == ConnectorOptions::Mode::kCached) {
    cache_ = std::make_unique<ChannelCache>(options_.cache);
  }
}

ChannelLease Connector::Lease(rfp::RpcServer& server, rdma::Node& client,
                              const rfp::RfpOptions& options, int thread) {
  if (cache_ != nullptr) {
    return cache_->Get(server, client, options, thread);
  }
  // Direct mode reproduces the legacy bringup exactly: the channel is
  // server-owned and outlives the lease (no CloseChannel on release), the
  // stub is lease-owned.
  rfp::Channel* channel = server.AcceptChannel(client, options, thread);
  ChannelLease lease;
  lease.channel_ = channel;
  lease.owned_stub_ = std::make_unique<rfp::RpcClient>(channel);
  lease.stub_ = lease.owned_stub_.get();
  return lease;
}

std::vector<ChannelLease> Connector::LeaseAll(rfp::RpcServer& server, rdma::Node& client,
                                              const rfp::RfpOptions& options) {
  std::vector<ChannelLease> leases;
  leases.reserve(static_cast<size_t>(server.num_threads()));
  for (int thread = 0; thread < server.num_threads(); ++thread) {
    leases.push_back(Lease(server, client, options, thread));
  }
  return leases;
}

Connector& Connector::Direct() {
  static Connector connector{ConnectorOptions{}};
  return connector;
}

}  // namespace conn
