#include "src/conn/pooled.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <string>

#include "src/check/checker.h"
#include "src/obs/metrics.h"
#include "src/rfp/wire.h"

namespace conn {

namespace {

constexpr size_t kRpcIdBytes = sizeof(uint16_t);

// One slot fits the larger (request) direction: header + rpc id + max body.
size_t SlotBytesFor(const PooledOptions& options) {
  return rfp::kReqHeaderBytes + kRpcIdBytes + options.max_message_bytes;
}

void Reject(const char* what) {
  throw std::invalid_argument(std::string("conn pooled: ") + what);
}

}  // namespace

void ValidateOptions(const PooledOptions& options) {
  if (options.qps < 1) Reject("qps must be >= 1");
  if (options.recv_slots < options.qps) Reject("recv_slots must be >= qps");
  if (options.client_recv_slots < 1) Reject("client_recv_slots must be >= 1");
  if (options.max_message_bytes == 0) Reject("max_message_bytes must be > 0");
  // The pooled size field shares size_status with the cid's high byte, so a
  // message (rpc id + body) must fit 16 bits (wire::kPooledSizeMask).
  if (options.max_message_bytes + kRpcIdBytes > rfp::wire::kPooledSizeMask) {
    Reject("max_message_bytes must fit the pooled 16-bit size field");
  }
  if (options.server_poll_ns <= 0) Reject("server_poll_ns must be > 0");
  if (options.client_poll_ns <= 0) Reject("client_poll_ns must be > 0");
  if (options.retry_timeout_ns <= 0) Reject("retry_timeout_ns must be > 0");
  if (options.max_retransmits < 0) Reject("max_retransmits must be >= 0");
  if (options.dispatch_cpu_ns < 0) Reject("dispatch_cpu_ns must be >= 0");
}

// ---- Server -------------------------------------------------------------------

PooledServer::PooledServer(rdma::Fabric& fabric, rfp::RpcServer& rpc, PooledOptions options)
    : fabric_(fabric), rpc_(rpc), node_(rpc.node()), options_(options) {
  ValidateOptions(options_);
  for (int q = 0; q < options_.qps; ++q) {
    qps_.push_back(fabric.CreateUd(node_));
  }
  // The shared receive arena and the per-QP tx staging come from the node's
  // registered-memory pool: bringing the tier up (and every client connect
  // after it) performs zero MR registrations.
  pool_ = mem::Pool::Shared(node_);
  arena_ = pool_->Alloc(slot_bytes() *
                        (static_cast<size_t>(options_.recv_slots) +
                         static_cast<size_t>(options_.qps)));
  free_slots_.reserve(static_cast<size_t>(options_.recv_slots));
  for (int s = 0; s < options_.recv_slots; ++s) {
    free_slots_.push_back(static_cast<uint32_t>(s));
  }
}

PooledServer::~PooledServer() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"node", node_.name()}};
  reg.GetCounter("conn.pooled.connects", labels)->Add(connects_);
  reg.GetCounter("conn.pooled.disconnects", labels)->Add(disconnects_);
  reg.GetCounter("conn.pooled.requests", labels)->Add(requests_served_);
  if (dropped_requests_ > 0) {
    reg.GetCounter("conn.pooled.dropped_requests", labels)->Add(dropped_requests_);
  }
  for (rdma::QueuePair* qp : qps_) {
    fabric_.RetireQp(qp);
  }
  pool_->Free(arena_);
}

size_t PooledServer::slot_bytes() const { return SlotBytesFor(options_); }

size_t PooledServer::rx_offset(uint32_t slot) const {
  return arena_.offset + static_cast<size_t>(slot) * slot_bytes();
}

size_t PooledServer::tx_offset(int qp_index) const {
  return arena_.offset +
         slot_bytes() * (static_cast<size_t>(options_.recv_slots) +
                         static_cast<size_t>(qp_index));
}

rdma::AddressHandle PooledServer::address(int qp_index) const {
  return rdma::AddressHandle{node_.id(), qps_[static_cast<size_t>(qp_index)]->qp_num()};
}

uint64_t PooledServer::recv_overflows() const {
  uint64_t total = 0;
  for (const rdma::QueuePair* qp : qps_) {
    total += qp->dropped_no_recv();
  }
  return total;
}

void PooledServer::TopUpRecv(int qp_index) {
  rdma::QueuePair* qp = qps_[static_cast<size_t>(qp_index)];
  // Fair-share target; the shared free list is what makes this an SRQ: a QP
  // that drains faster frees more slots and re-arms first, so slots flow to
  // wherever the burst lands instead of being strip-owned per QP.
  const size_t target = std::max<size_t>(
      1, static_cast<size_t>(options_.recv_slots) / static_cast<size_t>(num_qps()));
  while (!free_slots_.empty() && qp->recv_queue_depth() < target) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    qp->PostRecv(slot, *arena_.mr, rx_offset(slot), static_cast<uint32_t>(slot_bytes()));
  }
}

uint32_t PooledServer::AssignCid(const rdma::AddressHandle& reply) {
  // Monotonic, skipping 0 (the handshake sentinel) and any still-live cid
  // after a 24-bit wrap (16M connects within one server lifetime).
  do {
    next_cid_ = (next_cid_ + 1) & rfp::wire::kPooledCidMax;
  } while (next_cid_ == rfp::wire::kPooledCidNone || clients_.count(next_cid_) != 0);
  clients_[next_cid_] = ClientEntry{reply};
  if (check::FabricChecker* chk = fabric_.checker()) {
    chk->OnCidAssign(this, next_cid_);
  }
  return next_cid_;
}

void PooledServer::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (int q = 0; q < num_qps(); ++q) {
    TopUpRecv(q);
    fabric_.engine().Spawn(ServeLoop(q));
  }
}

namespace {

// Stages [ResponseHeader][payload] at `tx` and sends it. One tx slot per QP
// suffices: each ServeLoop awaits its send before polling again.
sim::Task<void> SendReply(rdma::QueuePair* qp, rdma::MemoryRegion* mr, size_t tx,
                          rdma::AddressHandle to, uint16_t seq, uint16_t time_us,
                          std::span<const std::byte> payload) {
  rfp::ResponseHeader reply;
  reply.size_status = rfp::wire::PackSizeStatus(static_cast<uint32_t>(payload.size()), true);
  reply.time_us = time_us;
  reply.seq = seq;
  mr->Store(tx, reply);
  if (!payload.empty()) {
    mr->WriteBytes(tx + rfp::kHeaderBytes, payload);
  }
  co_await qp->SendTo(to, *mr, tx,
                      static_cast<uint32_t>(rfp::kHeaderBytes + payload.size()));
}

}  // namespace

sim::Task<void> PooledServer::ServeLoop(int qp_index) {
  sim::Engine& engine = fabric_.engine();
  rdma::QueuePair* qp = qps_[static_cast<size_t>(qp_index)];
  rdma::MemoryRegion* mr = arena_.mr;
  const size_t tx = tx_offset(qp_index);
  const int thread_index = rpc_.num_threads() > 0 ? qp_index % rpc_.num_threads() : 0;
  std::vector<std::byte> request(options_.max_message_bytes);
  std::vector<std::byte> response(options_.max_message_bytes);
  while (!stop_) {
    TopUpRecv(qp_index);
    const auto wc = qp->recv_cq()->Poll();
    if (!wc.has_value()) {
      co_await engine.Sleep(options_.server_poll_ns);
      continue;
    }
    const uint32_t slot = static_cast<uint32_t>(wc->wr_id);
    const size_t rx = rx_offset(slot);
    bool ok = wc->ok() && wc->byte_len >= rfp::kReqHeaderBytes + kRpcIdBytes;
    rfp::RequestHeader header;
    uint32_t cid = 0;
    uint16_t rpc_id = 0;
    size_t body_bytes = 0;
    if (ok) {
      header = mr->Load<rfp::RequestHeader>(rx);
      cid = rfp::wire::UnpackPooledCid(header);
      const uint32_t msg = rfp::wire::UnpackPooledSize(header);
      ok = msg >= kRpcIdBytes && rfp::kReqHeaderBytes + msg <= wc->byte_len;
      if (ok) {
        rpc_id = mr->Load<uint16_t>(rx + rfp::kReqHeaderBytes);
        body_bytes = msg - kRpcIdBytes;
        mr->ReadBytes(rx + rfp::kReqHeaderBytes + kRpcIdBytes,
                      std::span(request.data(), body_bytes));
      }
    }
    // The slot is consumed either way; the next top-up re-arms it on
    // whichever QP runs dry first.
    free_slots_.push_back(slot);
    if (!ok) {
      ++dropped_requests_;
      continue;
    }
    if (rpc_id == kRpcConnect) {
      if (body_bytes < 2 * sizeof(uint32_t)) {
        ++dropped_requests_;
        continue;
      }
      uint32_t client_node = 0;
      uint32_t client_qpn = 0;
      std::memcpy(&client_node, request.data(), sizeof(uint32_t));
      std::memcpy(&client_qpn, request.data() + sizeof(uint32_t), sizeof(uint32_t));
      const rdma::AddressHandle reply_to{client_node, client_qpn};
      // A retransmitted connect assigns a fresh cid and the client keeps the
      // first reply's — the duplicate entry then ages in the table until the
      // server dies. Retransmits need injected loss or a pathological
      // timeout, so the leak is bounded by the retransmit count; connects_
      // vs live_connections() exposes it.
      const uint32_t new_cid = AssignCid(reply_to);
      ++connects_;
      std::memcpy(response.data(), &new_cid, sizeof(uint32_t));
      co_await SendReply(qp, mr, tx, reply_to, header.seq, 0,
                         std::span<const std::byte>(response.data(), sizeof(uint32_t)));
      continue;
    }
    const auto it = clients_.find(cid);
    if (cid == rfp::wire::kPooledCidNone || it == clients_.end()) {
      // Stale or closed connection (or a disconnect retransmit): drop, the
      // client's retransmit path surfaces the failure.
      ++dropped_requests_;
      continue;
    }
    // Capture the reply address by value: the handler below may suspend, and
    // a concurrent disconnect on another QP would invalidate the iterator.
    const rdma::AddressHandle reply_to = it->second.reply;
    if (rpc_id == kRpcDisconnect) {
      clients_.erase(it);
      if (check::FabricChecker* chk = fabric_.checker()) {
        chk->OnCidRelease(this, cid);
      }
      ++disconnects_;
      co_await SendReply(qp, mr, tx, reply_to, header.seq, 0, {});
      continue;
    }
    const rfp::AsyncHandler* handler = rpc_.FindHandler(rpc_id);
    if (handler == nullptr) {
      ++dropped_requests_;
      continue;
    }
    // Same handler table as the channel sweep; handlers are idempotent by
    // the RFP contract, so the server executes every arrival (retransmits
    // included) without a dedup filter, like the UD baseline.
    const sim::Time begun = engine.now();
    const rfp::HandlerContext ctx{thread_index};
    const rfp::HandlerResult result =
        co_await (*handler)(ctx, std::span<const std::byte>(request.data(), body_bytes),
                            std::span<std::byte>(response.data(), response.size()));
    co_await engine.Sleep(options_.dispatch_cpu_ns + result.process_ns);
    size_t resp_size = result.response_size;
    if (result.zero_copy.valid()) {
      // Pooled responses are pushed datagrams — there is no client-READ leg
      // to fetch the entry — so an indirect result is materialized after the
      // prefix, like the dedicated channel's server-reply fallback.
      rdma::MemoryRegion* entry = fabric_.FindRemote(rdma::RemoteKey{result.zero_copy.rkey});
      const size_t value_len = result.zero_copy.len;
      if (entry == nullptr || resp_size + value_len > response.size()) {
        ++dropped_requests_;
        continue;
      }
      entry->ReadBytes(result.zero_copy.offset,
                       std::span(response.data() + resp_size, value_len));
      resp_size += value_len;
    }
    ++requests_served_;
    co_await SendReply(qp, mr, tx, reply_to, header.seq,
                       rfp::SaturateTimeUs(engine.now() - begun),
                       std::span<const std::byte>(response.data(), resp_size));
  }
}

// ---- Client -------------------------------------------------------------------

PooledClient::PooledClient(rdma::Fabric& fabric, rdma::Node& node, PooledServer& server,
                           PooledOptions options)
    : fabric_(fabric), node_(node), server_(server), options_(options) {
  ValidateOptions(options_);
  server_addr_ = server.address(server.PickQp());
  qp_ = fabric.CreateUd(node);
  // Client buffers come from the node pool too: connecting a logical client
  // costs zero MR registrations end to end (the setup fast path).
  pool_ = mem::Pool::Shared(node);
  span_ = pool_->Alloc(slot_bytes() * (static_cast<size_t>(options_.client_recv_slots) + 1));
  for (int i = 0; i < options_.client_recv_slots; ++i) {
    RepostRecv(static_cast<uint64_t>(i));
  }
}

PooledClient::~PooledClient() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"client", node_.name()}};
  reg.GetCounter("conn.pooled.client_connects", labels)->Add(stats_.connects);
  reg.GetCounter("conn.pooled.client_calls", labels)->Add(stats_.calls);
  if (stats_.connects > 0) {
    reg.GetHistogram("conn.connect_ns", labels)->Merge(connect_latency_);
  }
  if (stats_.retransmits > 0) {
    reg.GetCounter("conn.pooled.client_retransmits", labels)->Add(stats_.retransmits);
  }
  if (stats_.failures > 0) {
    reg.GetCounter("conn.pooled.client_failures", labels)->Add(stats_.failures);
  }
  fabric_.RetireQp(qp_);
  pool_->Free(span_);
}

size_t PooledClient::slot_bytes() const { return SlotBytesFor(options_); }

size_t PooledClient::tx_off() const {
  return span_.offset + slot_bytes() * static_cast<size_t>(options_.client_recv_slots);
}

void PooledClient::RepostRecv(uint64_t wr_id) {
  qp_->PostRecv(wr_id, *span_.mr, span_.offset + static_cast<size_t>(wr_id) * slot_bytes(),
                static_cast<uint32_t>(slot_bytes()));
}

sim::Task<void> PooledClient::Connect() {
  if (connected()) {
    throw std::logic_error("conn pooled: already connected");
  }
  const sim::Time start = fabric_.engine().now();
  const size_t tx = tx_off();
  span_.mr->Store(tx + rfp::kReqHeaderBytes, kRpcConnect);
  span_.mr->Store(tx + rfp::kReqHeaderBytes + kRpcIdBytes, node_.id());
  span_.mr->Store(tx + rfp::kReqHeaderBytes + kRpcIdBytes + sizeof(uint32_t), qp_->qp_num());
  std::array<std::byte, sizeof(uint32_t)> out{};
  const size_t n = co_await Transact(
      static_cast<uint32_t>(kRpcIdBytes + 2 * sizeof(uint32_t)),
      std::span<std::byte>(out.data(), out.size()));
  if (n < sizeof(uint32_t)) {
    throw std::runtime_error("conn pooled: malformed connect response");
  }
  std::memcpy(&cid_, out.data(), sizeof(uint32_t));
  ++stats_.connects;
  connect_latency_.Record(fabric_.engine().now() - start);
}

sim::Task<void> PooledClient::Disconnect() {
  if (!connected()) {
    co_return;
  }
  const size_t tx = tx_off();
  span_.mr->Store(tx + rfp::kReqHeaderBytes, kRpcDisconnect);
  co_await Transact(static_cast<uint32_t>(kRpcIdBytes), {});
  cid_ = 0;
  ++stats_.disconnects;
}

sim::Task<size_t> PooledClient::Call(uint16_t rpc_id, std::span<const std::byte> request,
                                     std::span<std::byte> response) {
  if (!connected()) {
    throw std::logic_error("conn pooled: Call before Connect");
  }
  if (request.size() > options_.max_message_bytes) {
    throw std::invalid_argument("conn pooled: request exceeds max_message_bytes");
  }
  const size_t tx = tx_off();
  span_.mr->Store(tx + rfp::kReqHeaderBytes, rpc_id);
  if (!request.empty()) {
    span_.mr->WriteBytes(tx + rfp::kReqHeaderBytes + kRpcIdBytes, request);
  }
  ++stats_.calls;
  co_return co_await Transact(static_cast<uint32_t>(kRpcIdBytes + request.size()), response);
}

sim::Task<size_t> PooledClient::Transact(uint32_t body_bytes, std::span<std::byte> response) {
  sim::Engine& engine = fabric_.engine();
  const size_t tx = tx_off();
  const uint16_t seq = ++next_seq_;
  rfp::RequestHeader header;
  rfp::wire::PackPooledRequest(header, body_bytes, cid_, seq);
  span_.mr->Store(tx, header);
  const uint32_t wire_bytes = rfp::kReqHeaderBytes + body_bytes;
  int transmits = 0;
  sim::Time deadline = 0;
  while (true) {
    if (transmits == 0 || engine.now() >= deadline) {
      if (transmits > options_.max_retransmits) {
        ++stats_.failures;
        throw std::runtime_error("conn pooled: call timed out after retransmits");
      }
      if (transmits > 0) {
        ++stats_.retransmits;
      }
      ++transmits;
      ++stats_.sends;
      co_await qp_->SendTo(server_addr_, *span_.mr, tx, wire_bytes);
      deadline = engine.now() + options_.retry_timeout_ns;
    }
    // Drain arrived responses, filtering stale replies by sequence tag.
    while (auto wc = qp_->recv_cq()->Poll()) {
      const size_t rx = span_.offset + static_cast<size_t>(wc->wr_id) * slot_bytes();
      const rfp::ResponseHeader reply = span_.mr->Load<rfp::ResponseHeader>(rx);
      const size_t payload =
          wc->byte_len >= rfp::kHeaderBytes ? wc->byte_len - rfp::kHeaderBytes : 0;
      const bool match = wc->ok() && reply.seq == seq;
      if (match && payload <= response.size()) {
        span_.mr->ReadBytes(rx + rfp::kHeaderBytes, response.subspan(0, payload));
      }
      RepostRecv(wc->wr_id);
      if (match) {
        co_return payload;
      }
      ++stats_.duplicates;
    }
    co_await engine.Sleep(options_.client_poll_ns);
  }
}

}  // namespace conn
