// The unified client-construction API (docs/connections.md).
//
// Before this tier, every client brought its channels up by hand — the same
// AcceptChannel + RpcClient block copy-pasted across bench drivers,
// JakiroClient, and repl::Client. Connector centralizes that bringup behind
// one call and makes the connection strategy a configuration choice:
//
//   * kDirect — a dedicated channel per lease, owned by the server for its
//     lifetime (the legacy behavior, still right for benchmarks that want a
//     fixed fleet with no cache effects).
//   * kCached — leases resolve through an LRU ChannelCache, so a bounded
//     channel/byte budget serves an unbounded client population with
//     transparent re-establish on eviction.
//
// (The pooled datagram path, conn::PooledClient, stays a separate endpoint
// type: it trades per-call latency for connection scalability and does not
// speak the channel protocol, so it is not a lease mode.)

#ifndef SRC_CONN_CONNECTOR_H_
#define SRC_CONN_CONNECTOR_H_

#include <memory>
#include <vector>

#include "src/conn/cache.h"
#include "src/rdma/node.h"
#include "src/rfp/options.h"
#include "src/rfp/rpc.h"

namespace conn {

struct ConnectorOptions {
  enum class Mode {
    kDirect,  // dedicated channel per lease, server-owned lifetime
    kCached,  // lease through an LRU ChannelCache
  };
  Mode mode = Mode::kDirect;
  CacheOptions cache;  // used by kCached only
};

class Connector {
 public:
  explicit Connector(ConnectorOptions options = {});

  Connector(const Connector&) = delete;
  Connector& operator=(const Connector&) = delete;

  // One channel + stub to `server`'s dispatch thread `thread`. Leases must
  // not outlive this Connector.
  ChannelLease Lease(rfp::RpcServer& server, rdma::Node& client,
                     const rfp::RfpOptions& options, int thread);

  // One lease per server dispatch thread — the standard client bringup
  // (JakiroClient holds one endpoint per server thread).
  std::vector<ChannelLease> LeaseAll(rfp::RpcServer& server, rdma::Node& client,
                                     const rfp::RfpOptions& options);

  const ConnectorOptions& options() const { return options_; }
  // The cache behind kCached leases; nullptr in kDirect mode.
  ChannelCache* cache() { return cache_.get(); }

  // Process-wide direct-mode connector, the default for legacy call sites
  // (JakiroClient's two-argument constructor).
  static Connector& Direct();

 private:
  ConnectorOptions options_;
  std::unique_ptr<ChannelCache> cache_;
};

}  // namespace conn

#endif  // SRC_CONN_CONNECTOR_H_
