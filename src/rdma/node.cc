#include "src/rdma/node.h"

#include "src/rdma/fabric.h"

namespace rdma {

MemoryRegion* Node::RegisterMemory(size_t size, uint32_t access) {
  return fabric_->RegisterMemory(*this, size, access);
}

}  // namespace rdma
