// Calibration constants for the simulated RNIC and fabric.
//
// Defaults reproduce the performance envelope the paper measures on its
// Mellanox ConnectX-3 (MT27500, 40 Gbps) testbed (Section 2.2):
//
//   * out-bound one-sided IOPS saturate at ~2.11 MOPS once ~4 threads issue
//     concurrently (Fig 3) — modelled as a serialized per-NIC issue pipeline
//     whose service time is `outbound_issue_ns`;
//   * in-bound one-sided IOPS peak at ~11.26 MOPS for <=256 B payloads
//     (Figs 3 and 5) — modelled as a hardware serving engine with gap
//     `inbound_min_gap_ns`, bandwidth-bound above ~256 B;
//   * in-bound and out-bound IOPS converge at >=2 KB payloads where the
//     ~40 Gbps link is the bottleneck (Fig 5) — `bandwidth_bytes_per_ns`;
//   * server in-bound IOPS decline once total client threads exceed ~35
//     (Fig 4), attributed to client mutex + QP/CQ contention — modelled as
//     QP-state pressure terms (`*_free`/`*_factor` below);
//   * two-sided SEND/RECV shows no in/out asymmetry (Section 2.2) —
//     symmetric two-sided costs.
//
// Absolute values are inputs; every experiment's *shape* is an emergent
// output of executing the real protocols on this substrate.

#ifndef SRC_RDMA_CONFIG_H_
#define SRC_RDMA_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/sim/time.h"

namespace rdma {

struct NicConfig {
  // --- Out-bound (requester) path -----------------------------------------
  // Service time of the serialized issue pipeline per one-sided op: the
  // software/hardware interaction (doorbell, DMA of the WQE, completion
  // generation) that the Mellanox engineers identify as the out-bound cost.
  // 474 ns => 2.11 MOPS saturated.
  double outbound_issue_ns = 474.0;
  // READ holds more requester state than WRITE (observed by HERD and
  // RDMA-PVFS; paper Section 4.4.2): extra per-READ bookkeeping on the
  // requester, so a single WRITE has lower latency than a single READ
  // without changing the saturated pipeline rate.
  double read_state_cpu_ns = 60.0;
  // CPU time the posting thread spends building and posting a WR, and
  // reaping its completion.
  double post_cpu_ns = 200.0;
  double completion_cpu_ns = 150.0;
  // Per-node software posting lock (the client-side mutex the paper blames
  // for part of the contention in Fig 4).
  double post_lock_ns = 20.0;
  // Issue-pipeline inflation once more threads post concurrently on this
  // node than `outbound_free_threads` — the client-side "software (mutex)
  // and hardware (QP/CQ) contention" of Section 2.2. READ issue inflates
  // strongly (a requester holds per-READ state), which is what makes the
  // aggregate client out-bound stop scaling and drags the server's in-bound
  // IOPS down past ~50 client threads (Fig 4). WRITE/SEND issue inflates
  // only mildly (the gentle ServerReply decline beyond 6 threads in
  // Fig 12, while Fig 3's out-bound WRITE curve stays near-flat).
  int outbound_free_threads = 6;
  double outbound_read_thread_factor = 0.10;
  double outbound_write_thread_factor = 0.02;
  // Doorbell batching (docs/pipelining.md): when several WRs are posted in
  // one sweep, only the first op rings the doorbell and pays the full
  // `outbound_issue_ns`; each follower in the batch is fetched by the NIC's
  // WQE prefetcher and pays this marginal issue cost instead (still floored
  // by wire serialization). Batching only thins the *out-bound* pipeline;
  // the in-bound engine serves each op individually, so the paper's in/out
  // asymmetry is preserved. ~120 ns keeps a follower cheaper than a doorbell
  // but dearer than the in-bound gap.
  double outbound_batch_marginal_ns = 120.0;

  // --- In-bound (responder) path ------------------------------------------
  // Minimum gap between in-bound one-sided ops served purely in hardware.
  // 89 ns => 11.24 MOPS peak.
  double inbound_min_gap_ns = 89.0;

  // --- Link ----------------------------------------------------------------
  // Effective data bandwidth (40 Gbps signalling ~= 4.5 payload bytes/ns
  // after headers). Serialization time = bytes / bandwidth at both the
  // sender pipeline and the receiver engine.
  double bandwidth_bytes_per_ns = 4.5;

  // --- Two-sided SEND/RECV --------------------------------------------------
  // Symmetric costs: requester pipeline and responder engine pay the same
  // base service (no asymmetry, per the paper's observation).
  double two_sided_tx_ns = 474.0;
  double two_sided_rx_ns = 474.0;

  // Number of cores on the machine (dual 8-core Xeon E5-2640 v2).
  int cores = 16;

  // Cores reserved next to the NIC for its stations (driver/IRQ work of the
  // issue pipeline and completion handling). Dispatch workers that pin cores
  // via Node::ReserveWorkerCore are affinitized to the remaining
  // [nic_station_cores, cores) so they never time-share with the NIC's
  // driver cores (docs/multicore.md). 0 (the default) reserves nothing and
  // leaves every core available for compute — behavior-neutral. Must be
  // < cores.
  int nic_station_cores = 0;

  // Uniform +/- fraction applied to each op's service time at the issue
  // pipeline and the in-bound engine. Mean rates are unchanged; the jitter
  // produces realistic latency spread (and the paper's occasional fetch
  // retries, Table 3). Set to 0 for fully deterministic service.
  double service_jitter = 0.08;

  // --- Registered-memory pool (docs/memory.md) ------------------------------
  // Geometry of the per-node mem::Pool that backs channel slot rings, rfp
  // buffers, and store value slabs (chubaofs-style buddy pool: block size x
  // pool level fixes the arena, slab classes front the small sizes).
  //
  // Buddy leaf block: the smallest unit the buddy allocator hands out and
  // the slab unit carved into sub-block chunks. Must be a power of two.
  size_t mem_block_bytes = 4096;
  // Buddy orders per arena: one arena registers
  // mem_block_bytes << (mem_pool_level - 1) bytes (4 KiB x 13 => 16 MiB) and
  // is never deregistered until the pool dies, so churn reuses MRs.
  int mem_pool_level = 13;
  // Power-of-two slab classes below the leaf block (block/2, block/4, ...,
  // block >> mem_slab_classes); the smallest class must stay >= 32 bytes.
  int mem_slab_classes = 6;
  // Free blocks cached per slab/buddy size class before surplus frees fall
  // through to buddy coalescing.
  int mem_slab_magazine = 64;
  // Hard cap on bytes the pool may register per node (0 = unbounded). An
  // allocation that would push past the cap throws mem::ExhaustedError
  // instead of registering more memory.
  size_t mem_max_registered_bytes = 0;
};

struct FabricConfig {
  NicConfig nic;
  // One-way propagation + switch latency between any two nodes
  // (single InfiniScale-IV switch hop).
  sim::Time wire_latency_ns = 150;
  // Packet loss probability applied to unreliable transports (UC/UD) only.
  double unreliable_loss_prob = 0.0;
  // Seed for fabric-level randomness (loss draws).
  uint64_t seed = 0x52465031;  // "RFP1"
};

// Throw std::invalid_argument when a calibration value is outside its valid
// range (negative service times, probabilities outside [0,1], zero cores or
// bandwidth, ...). Called by the Nic and Fabric constructors, so a bad
// config fails loudly at construction instead of silently corrupting the
// timing model. Defined in nic.cc / fabric.cc.
void ValidateConfig(const NicConfig& config);
void ValidateConfig(const FabricConfig& config);

}  // namespace rdma

#endif  // SRC_RDMA_CONFIG_H_
