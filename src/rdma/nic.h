// RNIC performance model.
//
// Two asymmetric stations per NIC (paper Section 2.2):
//
//  * The OUT-BOUND issue pipeline — serialized software/hardware interaction
//    (WQE DMA, doorbell, completion generation) every *issued* one-sided op
//    pays. Base service `outbound_issue_ns` caps a saturated NIC at
//    ~2.11 MOPS; the service inflates when more threads post concurrently
//    than `outbound_free_threads` (QP/CQ contention).
//
//  * The IN-BOUND serving engine — pure hardware. Service is
//    max(inbound_min_gap_ns, bytes/bandwidth), giving ~11.24 MOPS for small
//    payloads and a bandwidth-bound tail that meets the out-bound curve at
//    ~2 KB (Fig 5). The gap inflates when the NIC serves more remote QPs
//    than `inbound_free_qps` (QP-state cache pressure; Fig 4's decline).
//
// Two-sided SEND/RECV pays symmetric base costs on both sides — the paper's
// observation that the asymmetry is specific to one-sided operations.

#ifndef SRC_RDMA_NIC_H_
#define SRC_RDMA_NIC_H_

#include <cstdint>
#include <string>

#include "src/rdma/config.h"
#include "src/rdma/types.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"
#include "src/sim/resource.h"
#include "src/sim/stats.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace rdma {

class Nic {
 public:
  // `node_name` labels this NIC's metrics in the observability registry
  // (see src/obs/metrics.h) and its trace tracks.
  Nic(sim::Engine& engine, const NicConfig& config, uint64_t seed = 0,
      std::string node_name = "");

  // Flushes per-NIC counters and queueing histograms into the default
  // metrics registry, labeled {node: <node_name>}.
  ~Nic();

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  const NicConfig& config() const { return config_; }

  // ---- Requester (out-bound) path ----------------------------------------

  // Marks a posting thread as having an op in flight; the count drives the
  // out-bound contention multiplier. Paired with EndOutbound().
  void BeginOutbound() { ++concurrent_outbound_; }
  void EndOutbound() { --concurrent_outbound_; }
  int concurrent_outbound() const { return concurrent_outbound_; }

  // Software cost of building+posting a WR, including the per-node post lock.
  sim::Task<void> PostOverhead();

  // Software cost of detecting and reaping the completion.
  sim::Task<void> CompletionOverhead();

  // Occupies the serialized issue pipeline for a one-sided op that carries
  // `outbound_payload` bytes onto the wire (WRITE payload; 0 for READ).
  // `batch_follower` marks an op posted in the same doorbell batch as an
  // earlier op: it pays the configured marginal issue cost instead of the
  // full doorbell service (see NicConfig::outbound_batch_marginal_ns).
  sim::Task<void> IssueOneSided(Opcode op, uint32_t outbound_payload,
                                bool batch_follower = false);

  // Same, for a two-sided SEND carrying `payload` bytes.
  sim::Task<void> IssueTwoSided(uint32_t payload);

  // Requester-side landing of READ response data: bandwidth only, the
  // response is absorbed by the same hardware path that sent the request.
  sim::Task<void> AbsorbReadResponse(uint32_t payload);

  // ---- Responder (in-bound) path ------------------------------------------

  // Number of QP endpoints living on this NIC. Informational (maintained by
  // the fabric at QP creation); the performance model keys off concurrent
  // posters, not QP count.
  void AddActiveQps(int delta) { active_qps_ += delta; }
  int active_qps() const { return active_qps_; }

  // Serves an in-bound one-sided READ/WRITE of `payload` bytes in hardware.
  sim::Task<void> ServeInboundOneSided(uint32_t payload);

  // Serves an in-bound two-sided SEND of `payload` bytes.
  sim::Task<void> ServeInboundTwoSided(uint32_t payload);

  // ---- Fault hooks (src/fault/) -------------------------------------------

  // Multiplies every subsequent service time at the chosen station; 1.0 is
  // nominal. Used by the fault injector to model a degraded (hot, throttled,
  // PCIe-starved) NIC engine for a window.
  void SetOutboundDegrade(double factor) { outbound_degrade_ = factor; }
  void SetInboundDegrade(double factor) { inbound_degrade_ = factor; }
  double outbound_degrade() const { return outbound_degrade_; }
  double inbound_degrade() const { return inbound_degrade_; }

  // Occupies the station for `window` virtual time: ops already in service
  // finish, queued and new ops wait out the stall. Modelled as a normal
  // (highest-priority-by-arrival) occupant of the serialized station, so a
  // stall composes with queueing exactly like a giant op would.
  sim::Task<void> StallOutbound(sim::Time window);
  sim::Task<void> StallInbound(sim::Time window);

  // ---- Introspection -------------------------------------------------------

  uint64_t outbound_ops() const { return outbound_ops_; }
  uint64_t inbound_ops() const { return inbound_ops_; }
  const std::string& node_name() const { return node_name_; }

  // Time outbound ops spent queued for the issue pipeline, and the pipeline
  // queue depth sampled at each post (paper Section 2.2's out-bound
  // bottleneck, now directly observable).
  const sim::Histogram& issue_wait_ns() const { return issue_wait_ns_; }
  const sim::Histogram& issue_queue_depth() const { return issue_queue_depth_; }
  double IssueUtilization(sim::Time from, sim::Time to) const {
    return issue_pipeline_.Utilization(from, to);
  }
  double ServeUtilization(sim::Time from, sim::Time to) const {
    return inbound_engine_.Utilization(from, to);
  }
  // Arms an exact utilization window on both engines (Resource::WatchFrom):
  // call with the measurement start before running, then query
  // Issue/ServeUtilization(at, end) for the busy fraction of that window
  // alone.
  void WatchUtilization(sim::Time at) {
    issue_pipeline_.WatchFrom(at);
    inbound_engine_.WatchFrom(at);
  }

  // Exposed for tests: effective service times under current contention.
  sim::Time OutboundServiceTime(Opcode op, uint32_t payload,
                                bool batch_follower = false) const;
  sim::Time InboundServiceTime(uint32_t payload) const;

 private:
  double OutboundMultiplier(Opcode op) const;
  // Applies the configured service jitter to a nominal service time.
  sim::Time Jitter(sim::Time nominal);

  // Emits a trace span for a station service interval when a sink is
  // attached to the engine.
  void TraceService(std::string_view name, bool inbound, sim::Time start);

  sim::Engine& engine_;
  const NicConfig config_;
  std::string node_name_;
  sim::Rng rng_;
  sim::Resource issue_pipeline_;
  sim::Resource inbound_engine_;
  sim::Mutex post_lock_;
  int concurrent_outbound_ = 0;
  int active_qps_ = 0;
  double outbound_degrade_ = 1.0;
  double inbound_degrade_ = 1.0;
  uint64_t stalls_ = 0;
  uint64_t outbound_ops_ = 0;
  uint64_t inbound_ops_ = 0;
  sim::Histogram issue_wait_ns_;
  sim::Histogram issue_queue_depth_;
};

}  // namespace rdma

#endif  // SRC_RDMA_NIC_H_
