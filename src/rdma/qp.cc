#include "src/rdma/qp.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/check/checker.h"
#include "src/rdma/fabric.h"
#include "src/rdma/nic.h"
#include "src/rdma/node.h"

namespace rdma {

namespace {

WorkCompletion MakeWc(Opcode op, uint32_t len, uint32_t qpn) {
  WorkCompletion wc;
  wc.opcode = op;
  wc.byte_len = len;
  wc.qp_num = qpn;
  return wc;
}

}  // namespace

void QueuePair::SetError() {
  state_ = QpState::kError;
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnQpError(qp_num_);
  }
}

void QueuePair::Recover() {
  state_ = QpState::kReady;
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnQpRecovered(qp_num_);
  }
}

sim::Task<void> QueuePair::AwaitTicket(uint64_t ticket) {
  if (ticket == 0) {
    co_return;
  }
  while (completed_ticket_ + 1 != ticket) {
    if (order_waiters_ == nullptr) {
      order_waiters_ = std::make_unique<sim::Notifier>(fabric_->engine());
    }
    co_await order_waiters_->Wait();
  }
  completed_ticket_ = ticket;
  if (order_waiters_ != nullptr) {
    order_waiters_->NotifyAll();
  }
}

void QueuePair::BeginOp() {
  if (outstanding_ops_++ == 0) {
    local_->nic().BeginOutbound();
  }
}

void QueuePair::EndOp() {
  if (--outstanding_ops_ == 0) {
    local_->nic().EndOutbound();
  }
}

sim::Task<WorkCompletion> QueuePair::Read(MemoryRegion& local, size_t local_off, RemoteKey rkey,
                                          size_t remote_off, uint32_t len, bool batch_follower) {
  WorkCompletion wc = MakeWc(Opcode::kRead, len, qp_num_);
  check::FabricChecker* chk = fabric_->checker();
  if (chk != nullptr) {
    chk->OnPost(qp_num_, Opcode::kRead, in_error(), type_ == QpType::kRc, retired_,
                batch_follower);
  }
  if (retired_) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (type_ != QpType::kRc) {
    wc.status = WcStatus::kUnsupportedOp;
    co_return wc;
  }
  if (in_error()) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (!local.InBounds(local_off, len)) {
    if (chk != nullptr) {
      chk->OnLocalBounds(qp_num_, Opcode::kRead, local_off, len, local.size(), false);
      chk->OnOpEnd(qp_num_);
    }
    wc.status = WcStatus::kLocalProtError;
    co_return wc;
  }

  sim::Engine& eng = fabric_->engine();
  Nic& nic = local_->nic();
  const uint64_t ticket = ++next_ticket_;
  BeginOp();
  co_await nic.PostOverhead();
  // The READ request itself carries no payload outward.
  co_await nic.IssueOneSided(Opcode::kRead, 0, batch_follower);
  co_await eng.Sleep(fabric_->WireDelay(local_, peer_, /*reliable=*/true));

  MemoryRegion* target = fabric_->FindRemote(rkey);
  if (chk != nullptr) {
    chk->OnRemoteAccess(qp_num_, Opcode::kRead, rkey.rkey, remote_off, len, peer_);
  }
  const bool ok = target != nullptr && target->node() == peer_ &&
                  target->InBounds(remote_off, len) && target->AllowsRemoteRead();
  co_await peer_->nic().ServeInboundOneSided(ok ? len : 0);
  // Hardware DMAs the remote bytes at the instant the serving engine handles
  // the request; concurrent remote writes before/after this instant are
  // naturally visible (or not), which is how torn reads arise.
  std::vector<std::byte> snapshot;
  if (ok) {
    snapshot.resize(len);
    target->ReadBytes(remote_off, snapshot);
    if (chk != nullptr) {
      wc.check_tick = chk->OnReadSnapshot(rkey.rkey, remote_off, len);
    }
  }

  co_await eng.Sleep(fabric_->WireDelay(peer_, local_, /*reliable=*/true));
  co_await nic.AbsorbReadResponse(ok ? len : 0);
  if (ok) {
    local.WriteBytes(local_off, snapshot);
  } else {
    wc.status = WcStatus::kRemoteAccessError;
    wc.byte_len = 0;
  }
  co_await AwaitTicket(ticket);
  co_await nic.CompletionOverhead();
  EndOp();
  if (chk != nullptr) {
    chk->OnOpEnd(qp_num_);
  }
  co_return wc;
}

sim::Task<WorkCompletion> QueuePair::Write(MemoryRegion& local, size_t local_off, RemoteKey rkey,
                                           size_t remote_off, uint32_t len, bool batch_follower) {
  WorkCompletion wc = MakeWc(Opcode::kWrite, len, qp_num_);
  check::FabricChecker* chk = fabric_->checker();
  if (chk != nullptr) {
    chk->OnPost(qp_num_, Opcode::kWrite, in_error(), type_ != QpType::kUd, retired_,
                batch_follower);
  }
  if (retired_) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (type_ == QpType::kUd) {
    wc.status = WcStatus::kUnsupportedOp;
    co_return wc;
  }
  if (in_error()) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (!local.InBounds(local_off, len)) {
    if (chk != nullptr) {
      chk->OnLocalBounds(qp_num_, Opcode::kWrite, local_off, len, local.size(), false);
      chk->OnOpEnd(qp_num_);
    }
    wc.status = WcStatus::kLocalProtError;
    co_return wc;
  }

  sim::Engine& eng = fabric_->engine();
  Nic& nic = local_->nic();
  const uint64_t ticket = type_ == QpType::kRc ? ++next_ticket_ : 0;
  BeginOp();
  co_await nic.PostOverhead();
  co_await nic.IssueOneSided(Opcode::kWrite, len, batch_follower);
  // The payload leaves the local buffer during issue; snapshot it so the
  // caller may reuse the buffer immediately after completion.
  std::vector<std::byte> payload(len);
  local.ReadBytes(local_off, payload);

  if (type_ == QpType::kUc) {
    // Fire-and-forget: local completion does not wait for delivery.
    eng.Spawn(DeliverUcWrite(rkey, remote_off, std::move(payload)));
    co_await nic.CompletionOverhead();
    EndOp();
    if (chk != nullptr) {
      chk->OnOpEnd(qp_num_);
    }
    co_return wc;
  }

  co_await eng.Sleep(fabric_->WireDelay(local_, peer_, /*reliable=*/true));
  MemoryRegion* target = fabric_->FindRemote(rkey);
  if (chk != nullptr) {
    chk->OnRemoteAccess(qp_num_, Opcode::kWrite, rkey.rkey, remote_off, len, peer_);
  }
  const bool ok = target != nullptr && target->node() == peer_ &&
                  target->InBounds(remote_off, len) && target->AllowsRemoteWrite();
  co_await peer_->nic().ServeInboundOneSided(ok ? len : 0);
  if (ok) {
    target->WriteBytes(remote_off, payload);
    if (chk != nullptr) {
      chk->OnRemoteWrite(rkey.rkey, remote_off, len);
    }
  } else {
    wc.status = WcStatus::kRemoteAccessError;
    wc.byte_len = 0;
  }
  co_await eng.Sleep(fabric_->WireDelay(peer_, local_, /*reliable=*/true));  // ACK
  co_await AwaitTicket(ticket);
  co_await nic.CompletionOverhead();
  EndOp();
  if (chk != nullptr) {
    chk->OnOpEnd(qp_num_);
  }
  co_return wc;
}

sim::Task<void> QueuePair::DeliverUcWrite(RemoteKey rkey, size_t remote_off,
                                          std::vector<std::byte> payload) {
  sim::Engine& eng = fabric_->engine();
  if (fabric_->DrawUnreliableLoss(local_, peer_)) {
    co_return;  // dropped in the network; nobody ever knows
  }
  co_await eng.Sleep(fabric_->WireDelay(local_, peer_, /*reliable=*/false));
  MemoryRegion* target = fabric_->FindRemote(rkey);
  const bool ok = target != nullptr && target->node() == peer_ &&
                  target->InBounds(remote_off, payload.size()) && target->AllowsRemoteWrite();
  co_await peer_->nic().ServeInboundOneSided(ok ? static_cast<uint32_t>(payload.size()) : 0);
  if (ok) {
    target->WriteBytes(remote_off, payload);
    if (check::FabricChecker* chk = fabric_->checker()) {
      chk->OnRemoteWrite(rkey.rkey, remote_off, payload.size());
    }
  }
}

sim::Task<WorkCompletion> QueuePair::Send(MemoryRegion& local, size_t local_off, uint32_t len) {
  WorkCompletion wc = MakeWc(Opcode::kSend, len, qp_num_);
  check::FabricChecker* chk = fabric_->checker();
  if (chk != nullptr) {
    chk->OnPost(qp_num_, Opcode::kSend, in_error(), type_ != QpType::kUd, retired_);
  }
  if (retired_) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (type_ == QpType::kUd) {
    wc.status = WcStatus::kUnsupportedOp;  // UD needs an explicit destination
    co_return wc;
  }
  if (in_error()) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (!local.InBounds(local_off, len)) {
    if (chk != nullptr) {
      chk->OnLocalBounds(qp_num_, Opcode::kSend, local_off, len, local.size(), false);
      chk->OnOpEnd(qp_num_);
    }
    wc.status = WcStatus::kLocalProtError;
    co_return wc;
  }

  sim::Engine& eng = fabric_->engine();
  Nic& nic = local_->nic();
  const uint64_t ticket = type_ == QpType::kRc ? ++next_ticket_ : 0;
  BeginOp();
  co_await nic.PostOverhead();
  co_await nic.IssueTwoSided(len);
  std::vector<std::byte> payload(len);
  local.ReadBytes(local_off, payload);

  QueuePair* dst = fabric_->FindQp(peer_->id(), PeerQpNum());
  if (type_ == QpType::kUc) {
    eng.Spawn(DeliverSend(dst, std::move(payload), /*reliable=*/false));
    co_await nic.CompletionOverhead();
    EndOp();
    if (chk != nullptr) {
      chk->OnOpEnd(qp_num_);
    }
    co_return wc;
  }

  // RC: delivery result is visible to the sender.
  co_await eng.Sleep(fabric_->WireDelay(local_, peer_, /*reliable=*/true));
  co_await peer_->nic().ServeInboundTwoSided(len);
  if (dst != nullptr && (dst->in_error() || dst->retired_)) {
    wc.status = WcStatus::kQpError;  // remote endpoint torn down
    wc.byte_len = 0;
  } else if (dst == nullptr || dst->recv_queue_.empty()) {
    wc.status = WcStatus::kRnrRetryExceeded;
    wc.byte_len = 0;
  } else {
    DeliverIntoRecv(dst, payload, qp_num_);
  }
  co_await eng.Sleep(fabric_->WireDelay(peer_, local_, /*reliable=*/true));  // ACK
  co_await AwaitTicket(ticket);
  co_await nic.CompletionOverhead();
  EndOp();
  if (chk != nullptr) {
    chk->OnOpEnd(qp_num_);
  }
  co_return wc;
}

sim::Task<WorkCompletion> QueuePair::SendTo(AddressHandle ah, MemoryRegion& local,
                                            size_t local_off, uint32_t len) {
  WorkCompletion wc = MakeWc(Opcode::kSend, len, qp_num_);
  check::FabricChecker* chk = fabric_->checker();
  if (chk != nullptr) {
    chk->OnPost(qp_num_, Opcode::kSend, in_error(), type_ == QpType::kUd, retired_);
  }
  if (retired_) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (type_ != QpType::kUd) {
    wc.status = WcStatus::kUnsupportedOp;
    co_return wc;
  }
  if (in_error()) {
    wc.status = WcStatus::kQpError;
    wc.byte_len = 0;
    co_return wc;
  }
  if (!local.InBounds(local_off, len)) {
    if (chk != nullptr) {
      chk->OnLocalBounds(qp_num_, Opcode::kSend, local_off, len, local.size(), false);
      chk->OnOpEnd(qp_num_);
    }
    wc.status = WcStatus::kLocalProtError;
    co_return wc;
  }

  sim::Engine& eng = fabric_->engine();
  Nic& nic = local_->nic();
  BeginOp();
  co_await nic.PostOverhead();
  co_await nic.IssueTwoSided(len);
  std::vector<std::byte> payload(len);
  local.ReadBytes(local_off, payload);
  QueuePair* dst = fabric_->FindQp(ah.node_id, ah.qp_num);
  if (dst != nullptr && dst->type_ == QpType::kUd) {
    eng.Spawn(DeliverSend(dst, std::move(payload), /*reliable=*/false));
  }
  co_await nic.CompletionOverhead();
  EndOp();
  if (chk != nullptr) {
    chk->OnOpEnd(qp_num_);
  }
  co_return wc;
}

sim::Task<void> QueuePair::DeliverSend(QueuePair* dst, std::vector<std::byte> payload,
                                       bool reliable) {
  sim::Engine& eng = fabric_->engine();
  if (!reliable && fabric_->DrawUnreliableLoss(local_, dst == nullptr ? nullptr : dst->local_)) {
    co_return;
  }
  if (dst == nullptr) {
    co_return;
  }
  co_await eng.Sleep(fabric_->WireDelay(local_, dst->local_, /*reliable=*/false));
  co_await dst->local_->nic().ServeInboundTwoSided(static_cast<uint32_t>(payload.size()));
  if (dst->in_error() || dst->retired_) {
    ++dst->dropped_no_recv_;  // endpoint torn down; datagram evaporates
    co_return;
  }
  if (!dst->recv_queue_.empty()) {
    DeliverIntoRecv(dst, payload, qp_num_);
  } else {
    // Unreliable transports drop silently when no RECV is posted.
    ++dst->dropped_no_recv_;
  }
}

void QueuePair::DeliverIntoRecv(QueuePair* dst, const std::vector<std::byte>& payload,
                                uint32_t src_qpn) {
  PostedRecv slot = dst->recv_queue_.front();
  dst->recv_queue_.pop_front();
  WorkCompletion rwc = MakeWc(Opcode::kRecv, static_cast<uint32_t>(payload.size()), dst->qp_num_);
  rwc.wr_id = slot.wr_id;
  rwc.src_qp_num = src_qpn;
  if (payload.size() > slot.capacity) {
    rwc.status = WcStatus::kLocalProtError;  // receive buffer too small
    rwc.byte_len = 0;
  } else {
    slot.mr->WriteBytes(slot.offset, payload);
  }
  if (dst->recv_cq_ != nullptr) {
    dst->recv_cq_->Push(rwc);
  }
}

void QueuePair::PostRecv(uint64_t wr_id, MemoryRegion& mr, size_t offset, uint32_t capacity) {
  recv_queue_.push_back(PostedRecv{wr_id, &mr, offset, capacity});
}

uint32_t QueuePair::PeerQpNum() const { return peer_qp_num_; }

void QueuePair::PostRead(uint64_t wr_id, MemoryRegion& local, size_t local_off, RemoteKey rkey,
                         size_t remote_off, uint32_t len, bool batch_follower) {
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnAsyncPost(qp_num_, wr_id);
  }
  fabric_->engine().Spawn([](QueuePair* qp, uint64_t id, MemoryRegion* mr, size_t loff,
                             RemoteKey key, size_t roff, uint32_t n,
                             bool follower) -> sim::Task<void> {
    WorkCompletion wc = co_await qp->Read(*mr, loff, key, roff, n, follower);
    wc.wr_id = id;
    qp->send_cq_->Push(wc);
  }(this, wr_id, &local, local_off, rkey, remote_off, len, batch_follower));
}

void QueuePair::PostWrite(uint64_t wr_id, MemoryRegion& local, size_t local_off, RemoteKey rkey,
                          size_t remote_off, uint32_t len, bool batch_follower) {
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnAsyncPost(qp_num_, wr_id);
  }
  fabric_->engine().Spawn([](QueuePair* qp, uint64_t id, MemoryRegion* mr, size_t loff,
                             RemoteKey key, size_t roff, uint32_t n,
                             bool follower) -> sim::Task<void> {
    WorkCompletion wc = co_await qp->Write(*mr, loff, key, roff, n, follower);
    wc.wr_id = id;
    qp->send_cq_->Push(wc);
  }(this, wr_id, &local, local_off, rkey, remote_off, len, batch_follower));
}

void QueuePair::PostSend(uint64_t wr_id, MemoryRegion& local, size_t local_off, uint32_t len) {
  if (check::FabricChecker* chk = fabric_->checker()) {
    chk->OnAsyncPost(qp_num_, wr_id);
  }
  fabric_->engine().Spawn(
      [](QueuePair* qp, uint64_t id, MemoryRegion* mr, size_t loff, uint32_t n) -> sim::Task<void> {
        WorkCompletion wc = co_await qp->Send(*mr, loff, n);
        wc.wr_id = id;
        qp->send_cq_->Push(wc);
      }(this, wr_id, &local, local_off, len));
}

}  // namespace rdma
