// The simulated cluster: nodes, wire model, QP wiring, and the remote-key
// registry used to resolve one-sided operations.

#ifndef SRC_RDMA_FABRIC_H_
#define SRC_RDMA_FABRIC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/rdma/config.h"
#include "src/rdma/cq.h"
#include "src/rdma/memory.h"
#include "src/rdma/node.h"
#include "src/rdma/qp.h"
#include "src/rdma/types.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace rdma {

// A connected pair of QP endpoints (one per node).
struct QpEnds {
  QueuePair* first;
  QueuePair* second;
};

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine, FabricConfig config = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Engine& engine() { return engine_; }
  const FabricConfig& config() const { return config_; }
  sim::Time wire_latency() const { return config_.wire_latency_ns; }

  // ---- Topology -------------------------------------------------------------

  Node& AddNode(std::string name);
  Node& node(size_t index) { return *nodes_[index]; }
  size_t node_count() const { return nodes_.size(); }

  // Creates a standalone CQ on a node (CQs may be shared between QPs).
  CompletionQueue* CreateCq(Node& node);

  // Connects two nodes with a reliable (RC) or unreliable (UC) connection.
  // Each endpoint gets dedicated send/recv CQs unless explicit CQs are given.
  QpEnds ConnectRc(Node& a, Node& b);
  QpEnds ConnectUc(Node& a, Node& b);

  // Creates an unconnected UD QP on a node (addressed per-SEND).
  QueuePair* CreateUd(Node& node);

  // ---- Internal services used by Node and QueuePair ------------------------

  MemoryRegion* RegisterMemory(Node& node, size_t size, uint32_t access);

  // Resolves an rkey to its region; nullptr when unknown.
  MemoryRegion* FindRemote(RemoteKey rkey);

  // Resolves a UD destination; nullptr when unknown.
  QueuePair* FindQp(uint32_t node_id, uint32_t qp_num);

  // Draws a loss decision for unreliable transports.
  bool DrawLoss() {
    return config_.unreliable_loss_prob > 0.0 && rng_.NextBernoulli(config_.unreliable_loss_prob);
  }

 private:
  QpEnds Connect(Node& a, Node& b, QpType type);

  sim::Engine& engine_;
  FabricConfig config_;
  sim::Rng rng_;
  uint32_t next_key_ = 1;
  uint32_t next_qpn_ = 1;
  std::deque<std::unique_ptr<Node>> nodes_;
  std::deque<std::unique_ptr<QueuePair>> qps_;
  std::deque<std::unique_ptr<CompletionQueue>> cqs_;
  std::unordered_map<uint32_t, MemoryRegion*> regions_by_rkey_;
  std::unordered_map<uint64_t, QueuePair*> qps_by_addr_;
};

}  // namespace rdma

#endif  // SRC_RDMA_FABRIC_H_
