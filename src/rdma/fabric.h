// The simulated cluster: nodes, wire model, QP wiring, and the remote-key
// registry used to resolve one-sided operations.

#ifndef SRC_RDMA_FABRIC_H_
#define SRC_RDMA_FABRIC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/check/checker.h"
#include "src/rdma/config.h"
#include "src/rdma/cq.h"
#include "src/rdma/memory.h"
#include "src/rdma/node.h"
#include "src/rdma/qp.h"
#include "src/rdma/types.h"
#include "src/sim/engine.h"
#include "src/sim/random.h"

namespace rdma {

// A connected pair of QP endpoints (one per node).
struct QpEnds {
  QueuePair* first;
  QueuePair* second;
};

// A transient impairment on one node pair, installed/removed by the fault
// layer (src/fault/). Applies on top of the global wire model:
//  * `extra_delay_ns` is added to every traversal in either direction;
//  * `loss_prob` drops unreliable (UC/UD) packets crossing the pair, and for
//    reliable (RC) traffic charges `rc_retransmit_ns` per lost-and-retried
//    packet instead (the transport hides the loss but not the latency).
struct LinkFault {
  double loss_prob = 0.0;
  sim::Time extra_delay_ns = 0;
  sim::Time rc_retransmit_ns = 0;
};

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine, FabricConfig config = {});

  // Flushes the per-node registered-memory census to obs gauges
  // (rdma.mr.registered_bytes / .registrations / .deregistrations).
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Engine& engine() { return engine_; }
  const FabricConfig& config() const { return config_; }
  sim::Time wire_latency() const { return config_.wire_latency_ns; }

  // The invariant checker, attached at construction when the global check
  // mode is not off (RFP_CHECK env / check::SetMode). Null otherwise; every
  // hook site guards on it, so the default build path costs one null test.
  check::FabricChecker* checker() const { return checker_.get(); }

  // ---- Topology -------------------------------------------------------------

  Node& AddNode(std::string name);
  Node& node(size_t index) { return *nodes_[index]; }
  size_t node_count() const { return nodes_.size(); }

  // Creates a standalone CQ on a node (CQs may be shared between QPs).
  CompletionQueue* CreateCq(Node& node);

  // Connects two nodes with a reliable (RC) or unreliable (UC) connection.
  // Each endpoint gets dedicated send/recv CQs unless explicit CQs are given.
  QpEnds ConnectRc(Node& a, Node& b);
  QpEnds ConnectUc(Node& a, Node& b);

  // Creates an unconnected UD QP on a node (addressed per-SEND).
  QueuePair* CreateUd(Node& node);

  // ---- Internal services used by Node and QueuePair ------------------------

  MemoryRegion* RegisterMemory(Node& node, size_t size, uint32_t access);

  // Tears down a registration: the rkey stops resolving (subsequent one-sided
  // access completes with kRemoteAccessError and, under checking, flags
  // mr.use_after_deregister) and the region's memory is released.
  void DeregisterMemory(MemoryRegion* mr);

  // Removes a replaced QP endpoint from the fabric: it stops resolving as a
  // SEND destination, leaves the NIC's active-QP census, and rejects every
  // subsequent post with kQpError. Channels retire both old endpoints after
  // a reconnect so stale pointers cannot keep posting (and so NIC contention
  // reflects live QPs, not the reconnect history).
  void RetireQp(QueuePair* qp);

  // Registered-memory census (docs/memory.md): bytes currently registered on
  // `node` and how many registrations / deregistrations it has ever
  // performed. Steady-state pooled operation — channel churn, reconnects via
  // RetireQp — must leave RegistrationCount flat: re-registration is the
  // control-plane cost the mem::Pool exists to avoid.
  size_t RegisteredBytes(const Node& node) const { return node.registered_bytes_; }
  uint64_t RegistrationCount(const Node& node) const { return node.registration_count_; }
  uint64_t DeregistrationCount(const Node& node) const { return node.deregistration_count_; }

  // QP census, the connection-state side of the same scaling story: live
  // (non-retired) QPs whose local endpoint is `node`. The pooled connection
  // tier (src/conn) must keep this flat at N while serving M >> N logical
  // clients — QP state, like registered memory, must not grow with client
  // count (docs/connections.md).
  size_t LiveQpCount(const Node& node) const;

  // Resolves an rkey to its region; nullptr when unknown.
  MemoryRegion* FindRemote(RemoteKey rkey);

  // Resolves a UD destination; nullptr when unknown.
  QueuePair* FindQp(uint32_t node_id, uint32_t qp_num);

  // Draws a loss decision for unreliable transports.
  bool DrawLoss() {
    return config_.unreliable_loss_prob > 0.0 && rng_.NextBernoulli(config_.unreliable_loss_prob);
  }

  // ---- Fault hooks (src/fault/) -------------------------------------------

  // Installs/removes a LinkFault on the unordered node pair {a, b}.
  void SetLinkFault(uint32_t a, uint32_t b, const LinkFault& fault);
  void ClearLinkFault(uint32_t a, uint32_t b);
  const LinkFault* FindLinkFault(uint32_t a, uint32_t b) const;

  // One-way traversal time between two nodes: the global wire latency plus
  // any active link fault. For reliable transports a faulted link's loss
  // draw converts into a retransmission delay rather than a drop. With no
  // fault installed this consumes no RNG draws, so fault-free runs keep the
  // exact event schedule they had before the fault layer existed.
  sim::Time WireDelay(const Node* from, const Node* to, bool reliable);

  // Loss decision for unreliable transports crossing a specific pair:
  // the global `unreliable_loss_prob` draw plus any link-fault draw.
  bool DrawUnreliableLoss(const Node* from, const Node* to);

  // Transitions every RC QP whose endpoints live on the unordered node pair
  // {a, b} into the error state (both directions). Returns the number of
  // QPs transitioned. Recovery is by reconnecting (ConnectRc) — exactly the
  // verbs contract, where an error'd QP is torn down and replaced.
  int FailRcQps(uint32_t a, uint32_t b);

 private:
  QpEnds Connect(Node& a, Node& b, QpType type);

  static uint64_t PairKey(uint32_t a, uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  sim::Engine& engine_;
  FabricConfig config_;
  std::unique_ptr<check::FabricChecker> checker_;
  sim::Rng rng_;
  uint32_t next_key_ = 1;
  uint32_t next_qpn_ = 1;
  std::deque<std::unique_ptr<Node>> nodes_;
  std::deque<std::unique_ptr<QueuePair>> qps_;
  std::deque<std::unique_ptr<CompletionQueue>> cqs_;
  std::unordered_map<uint32_t, MemoryRegion*> regions_by_rkey_;
  std::unordered_map<uint64_t, QueuePair*> qps_by_addr_;
  std::unordered_map<uint64_t, LinkFault> link_faults_;
};

}  // namespace rdma

#endif  // SRC_RDMA_FABRIC_H_
