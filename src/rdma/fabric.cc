#include "src/rdma/fabric.h"

#include <utility>

#include "src/obs/metrics.h"

namespace rdma {

namespace {

uint64_t QpAddr(uint32_t node_id, uint32_t qp_num) {
  return (static_cast<uint64_t>(node_id) << 32) | qp_num;
}

}  // namespace

Fabric::Fabric(sim::Engine& engine, FabricConfig config)
    : engine_(engine), config_(config), rng_(config.seed) {
  ValidateConfig(config_);
  const check::Mode mode = check::CurrentMode();
  if (mode != check::Mode::kOff) {
    checker_ = std::make_unique<check::FabricChecker>(&engine_, mode);
  }
}

Fabric::~Fabric() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  for (const auto& node : nodes_) {
    const obs::Labels labels{{"node", node->name()}};
    reg.GetGauge("rdma.mr.registered_bytes", labels)
        ->Set(static_cast<double>(node->registered_bytes_));
    if (node->registration_count_ > 0) {
      reg.GetCounter("rdma.mr.registrations", labels)->Add(node->registration_count_);
    }
    if (node->deregistration_count_ > 0) {
      reg.GetCounter("rdma.mr.deregistrations", labels)->Add(node->deregistration_count_);
    }
  }
}

Node& Fabric::AddNode(std::string name) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  // Per-node jitter streams derive from the fabric seed, so changing the
  // seed perturbs every service time while keeping runs reproducible.
  nodes_.push_back(std::make_unique<Node>(engine_, this, id, std::move(name), config_.nic,
                                          sim::Mix64(config_.seed) ^ id));
  return *nodes_.back();
}

CompletionQueue* Fabric::CreateCq(Node& node) {
  (void)node;  // CQs carry no per-node state in the model, only identity.
  cqs_.push_back(std::make_unique<CompletionQueue>(engine_));
  cqs_.back()->set_checker(checker_.get());
  return cqs_.back().get();
}

QpEnds Fabric::Connect(Node& a, Node& b, QpType type) {
  CompletionQueue* a_send = CreateCq(a);
  CompletionQueue* a_recv = CreateCq(a);
  CompletionQueue* b_send = CreateCq(b);
  CompletionQueue* b_recv = CreateCq(b);
  const uint32_t qpn_a = next_qpn_++;
  const uint32_t qpn_b = next_qpn_++;
  qps_.push_back(std::make_unique<QueuePair>(this, type, qpn_a, &a, &b, a_send, a_recv));
  QueuePair* qa = qps_.back().get();
  qps_.push_back(std::make_unique<QueuePair>(this, type, qpn_b, &b, &a, b_send, b_recv));
  QueuePair* qb = qps_.back().get();
  qa->peer_qp_num_ = qpn_b;
  qb->peer_qp_num_ = qpn_a;
  qps_by_addr_[QpAddr(a.id(), qpn_a)] = qa;
  qps_by_addr_[QpAddr(b.id(), qpn_b)] = qb;
  a.nic().AddActiveQps(1);
  b.nic().AddActiveQps(1);
  if (checker_ != nullptr) {
    checker_->OnQpCreated(qpn_a, type);
    checker_->OnQpCreated(qpn_b, type);
  }
  return QpEnds{qa, qb};
}

QpEnds Fabric::ConnectRc(Node& a, Node& b) { return Connect(a, b, QpType::kRc); }

QpEnds Fabric::ConnectUc(Node& a, Node& b) { return Connect(a, b, QpType::kUc); }

QueuePair* Fabric::CreateUd(Node& node) {
  CompletionQueue* send_cq = CreateCq(node);
  CompletionQueue* recv_cq = CreateCq(node);
  const uint32_t qpn = next_qpn_++;
  qps_.push_back(
      std::make_unique<QueuePair>(this, QpType::kUd, qpn, &node, nullptr, send_cq, recv_cq));
  QueuePair* qp = qps_.back().get();
  qps_by_addr_[QpAddr(node.id(), qpn)] = qp;
  node.nic().AddActiveQps(1);
  if (checker_ != nullptr) {
    checker_->OnQpCreated(qpn, QpType::kUd);
  }
  return qp;
}

MemoryRegion* Fabric::RegisterMemory(Node& node, size_t size, uint32_t access) {
  const uint32_t key = next_key_++;
  node.regions_.push_back(std::make_unique<MemoryRegion>(&node, key, key, size, access));
  MemoryRegion* mr = node.regions_.back().get();
  regions_by_rkey_[key] = mr;
  node.registered_bytes_ += size;
  ++node.registration_count_;
  if (checker_ != nullptr) {
    checker_->OnMrRegistered(key, &node, size, access);
  }
  return mr;
}

void Fabric::DeregisterMemory(MemoryRegion* mr) {
  if (mr == nullptr) {
    return;
  }
  const uint32_t key = mr->remote_key().rkey;
  regions_by_rkey_.erase(key);
  if (checker_ != nullptr) {
    checker_->OnMrDeregistered(key);
  }
  Node* node = mr->node();
  for (auto it = node->regions_.begin(); it != node->regions_.end(); ++it) {
    if (it->get() == mr) {
      node->registered_bytes_ -= (*it)->size();
      ++node->deregistration_count_;
      node->regions_.erase(it);
      break;
    }
  }
}

void Fabric::RetireQp(QueuePair* qp) {
  if (qp == nullptr || qp->retired_) {
    return;
  }
  qp->retired_ = true;
  qps_by_addr_.erase(QpAddr(qp->local_node()->id(), qp->qp_num()));
  qp->local_node()->nic().AddActiveQps(-1);
  if (checker_ != nullptr) {
    checker_->OnQpRetired(qp->qp_num());
  }
}

MemoryRegion* Fabric::FindRemote(RemoteKey rkey) {
  auto it = regions_by_rkey_.find(rkey.rkey);
  return it == regions_by_rkey_.end() ? nullptr : it->second;
}

size_t Fabric::LiveQpCount(const Node& node) const {
  size_t live = 0;
  for (const auto& qp : qps_) {
    if (!qp->retired() && qp->local_node() == &node) {
      ++live;
    }
  }
  return live;
}

QueuePair* Fabric::FindQp(uint32_t node_id, uint32_t qp_num) {
  auto it = qps_by_addr_.find(QpAddr(node_id, qp_num));
  return it == qps_by_addr_.end() ? nullptr : it->second;
}

void Fabric::SetLinkFault(uint32_t a, uint32_t b, const LinkFault& fault) {
  link_faults_[PairKey(a, b)] = fault;
}

void Fabric::ClearLinkFault(uint32_t a, uint32_t b) { link_faults_.erase(PairKey(a, b)); }

const LinkFault* Fabric::FindLinkFault(uint32_t a, uint32_t b) const {
  auto it = link_faults_.find(PairKey(a, b));
  return it == link_faults_.end() ? nullptr : &it->second;
}

sim::Time Fabric::WireDelay(const Node* from, const Node* to, bool reliable) {
  sim::Time delay = config_.wire_latency_ns;
  if (link_faults_.empty() || from == nullptr || to == nullptr) {
    return delay;
  }
  auto it = link_faults_.find(PairKey(from->id(), to->id()));
  if (it == link_faults_.end()) {
    return delay;
  }
  const LinkFault& fault = it->second;
  delay += fault.extra_delay_ns;
  if (reliable && fault.loss_prob > 0.0) {
    // RC retries until the packet gets through; each lost attempt costs one
    // retransmission timeout. Geometric number of losses before success,
    // capped so a total-blackhole (loss_prob == 1) burst stays finite.
    for (int lost = 0; lost < 16 && rng_.NextBernoulli(fault.loss_prob); ++lost) {
      delay += fault.rc_retransmit_ns;
    }
  }
  return delay;
}

bool Fabric::DrawUnreliableLoss(const Node* from, const Node* to) {
  bool lost = DrawLoss();
  if (!link_faults_.empty() && from != nullptr && to != nullptr) {
    auto it = link_faults_.find(PairKey(from->id(), to->id()));
    if (it != link_faults_.end() && it->second.loss_prob > 0.0 &&
        rng_.NextBernoulli(it->second.loss_prob)) {
      lost = true;
    }
  }
  return lost;
}

int Fabric::FailRcQps(uint32_t a, uint32_t b) {
  const uint64_t key = PairKey(a, b);
  int failed = 0;
  for (auto& qp : qps_) {
    if (qp->type() != QpType::kRc || qp->in_error() || qp->retired() ||
        qp->peer_node() == nullptr) {
      continue;
    }
    if (PairKey(qp->local_node()->id(), qp->peer_node()->id()) == key) {
      qp->SetError();
      ++failed;
    }
  }
  return failed;
}

}  // namespace rdma
