// A simulated machine: one RNIC, a core pool, and registered memory.

#ifndef SRC_RDMA_NODE_H_
#define SRC_RDMA_NODE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/rdma/config.h"
#include "src/rdma/memory.h"
#include "src/rdma/nic.h"
#include "src/sim/cpu.h"
#include "src/sim/engine.h"

namespace rdma {

class Fabric;

class Node {
 public:
  Node(sim::Engine& engine, Fabric* fabric, uint32_t id, std::string name,
       const NicConfig& config, uint64_t seed)
      : fabric_(fabric), id_(id), name_(std::move(name)), nic_(engine, config, seed, name_),
        cpus_(engine, config.cores), worker_core_first_(config.nic_station_cores),
        next_worker_core_(config.nic_station_cores) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  Nic& nic() { return nic_; }
  const Nic& nic() const { return nic_; }
  sim::CpuSet& cpus() { return cpus_; }
  Fabric* fabric() const { return fabric_; }

  // Registers `size` bytes with the NIC (the paper's malloc_buf maps here).
  // The region is owned by the node and remains valid for its lifetime.
  MemoryRegion* RegisterMemory(size_t size, uint32_t access);

  // Opaque per-node service slot: mem::Pool parks the node's shared
  // registered-memory pool here so every consumer on the node draws from one
  // allocator (rdma cannot name mem — the dependency runs the other way).
  const std::shared_ptr<void>& pool_handle() const { return pool_handle_; }
  void set_pool_handle(std::shared_ptr<void> handle) { pool_handle_ = std::move(handle); }

  // Hands out the next compute core for a pinned dispatch worker: round-robin
  // over [NicConfig::nic_station_cores, cores), skipping the cores reserved
  // for the NIC's stations. Wraps when workers outnumber compute cores, so
  // extra workers time-share a core through CpuSet::ComputeOn instead of
  // conjuring phantom parallelism (docs/multicore.md).
  int ReserveWorkerCore() {
    const int core = next_worker_core_;
    ++next_worker_core_;
    if (next_worker_core_ >= cpus_.cores()) {
      next_worker_core_ = worker_core_first_;
    }
    return core;
  }

 private:
  friend class Fabric;

  Fabric* fabric_;
  uint32_t id_;
  std::string name_;
  Nic nic_;
  sim::CpuSet cpus_;
  int worker_core_first_;
  int next_worker_core_;
  std::deque<std::unique_ptr<MemoryRegion>> regions_;
  std::shared_ptr<void> pool_handle_;
  // Registered-memory census, maintained by Fabric::{Register,Deregister}Memory
  // and read back through Fabric::RegisteredBytes/RegistrationCount.
  size_t registered_bytes_ = 0;
  uint64_t registration_count_ = 0;
  uint64_t deregistration_count_ = 0;
};

}  // namespace rdma

#endif  // SRC_RDMA_NODE_H_
