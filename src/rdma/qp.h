// Queue pairs.
//
// A QueuePair executes operations against the fabric's timing model while
// copying real bytes between memory regions. The op-support matrix follows
// the hardware (paper Section 5): RC supports READ/WRITE/SEND, UC drops
// READ, UD supports SEND only (addressed per-op with an AddressHandle).
//
// Two usage styles:
//  * synchronous — `co_await qp.Read(...)` returns the WorkCompletion
//    directly (post + spin-until-complete, the pattern the paper's clients
//    use: "we always wait for an RDMA operation's completion before
//    starting the next operation");
//  * asynchronous — `PostRead(wr_id, ...)` returns immediately and the
//    completion lands on the send CQ.

#ifndef SRC_RDMA_QP_H_
#define SRC_RDMA_QP_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/rdma/cq.h"
#include "src/rdma/memory.h"
#include "src/rdma/types.h"
#include "src/sim/signal.h"
#include "src/sim/task.h"

namespace rdma {

class Fabric;
class Node;

// Lifecycle of a QP, a two-state rendition of the verbs state machine
// (INIT/RTR/RTS collapse into kReady; SQE/ERR collapse into kError).
enum class QpState : uint8_t {
  kReady,
  kError,
};

class QueuePair {
 public:
  QueuePair(Fabric* fabric, QpType type, uint32_t qp_num, Node* local, Node* peer,
            CompletionQueue* send_cq, CompletionQueue* recv_cq)
      : fabric_(fabric), type_(type), qp_num_(qp_num), local_(local), peer_(peer),
        send_cq_(send_cq), recv_cq_(recv_cq) {}

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  QpType type() const { return type_; }
  uint32_t qp_num() const { return qp_num_; }
  Node* local_node() const { return local_; }
  Node* peer_node() const { return peer_; }
  CompletionQueue* send_cq() const { return send_cq_; }
  CompletionQueue* recv_cq() const { return recv_cq_; }

  // ---- Error state (fault injection / recovery) ---------------------------

  QpState state() const { return state_; }
  bool in_error() const { return state_ == QpState::kError; }

  // True once Fabric::RetireQp removed this endpoint from the fabric (its
  // connection was replaced). Retired QPs reject every post with kQpError.
  bool retired() const { return retired_; }

  // Transitions to the error state: every subsequent operation completes
  // immediately with WcStatus::kQpError, and in-bound messages addressed to
  // this QP are dropped. Operations already in flight complete normally
  // (their packets are already on the wire).
  void SetError();

  // Returns the QP to service. Real deployments replace an error'd QP with a
  // fresh connection (see Fabric::ConnectRc); this exists for tests and for
  // transports with no connection state to rebuild.
  void Recover();

  // ---- Synchronous one-sided operations -----------------------------------

  // RDMA READ: fetches `len` bytes from (rkey, remote_off) on the connected
  // peer into `local` at `local_off`. `batch_follower` marks an op posted in
  // the same doorbell batch as an earlier op on this QP; it pays the NIC's
  // marginal batched-issue cost (NicConfig::outbound_batch_marginal_ns)
  // instead of the full out-bound service.
  sim::Task<WorkCompletion> Read(MemoryRegion& local, size_t local_off, RemoteKey rkey,
                                 size_t remote_off, uint32_t len, bool batch_follower = false);

  // RDMA WRITE: pushes `len` bytes from `local` at `local_off` into
  // (rkey, remote_off) on the connected peer.
  sim::Task<WorkCompletion> Write(MemoryRegion& local, size_t local_off, RemoteKey rkey,
                                  size_t remote_off, uint32_t len, bool batch_follower = false);

  // ---- Synchronous two-sided operations ------------------------------------

  // SEND on a connected QP (RC/UC): consumes a posted RECV at the peer.
  sim::Task<WorkCompletion> Send(MemoryRegion& local, size_t local_off, uint32_t len);

  // SEND on a UD QP to an explicit destination.
  sim::Task<WorkCompletion> SendTo(AddressHandle ah, MemoryRegion& local, size_t local_off,
                                   uint32_t len);

  // Posts a receive buffer; incoming SENDs consume buffers in FIFO order and
  // deliver a kRecv completion (with the data length) to the recv CQ.
  void PostRecv(uint64_t wr_id, MemoryRegion& mr, size_t offset, uint32_t capacity);

  size_t recv_queue_depth() const { return recv_queue_.size(); }

  // Incoming unreliable messages dropped because no RECV was posted
  // (invisible to the sender; the application-level symptom is a timeout).
  uint64_t dropped_no_recv() const { return dropped_no_recv_; }

  // ---- Asynchronous posts (completion delivered to the send CQ) -----------

  void PostRead(uint64_t wr_id, MemoryRegion& local, size_t local_off, RemoteKey rkey,
                size_t remote_off, uint32_t len, bool batch_follower = false);
  void PostWrite(uint64_t wr_id, MemoryRegion& local, size_t local_off, RemoteKey rkey,
                 size_t remote_off, uint32_t len, bool batch_follower = false);
  void PostSend(uint64_t wr_id, MemoryRegion& local, size_t local_off, uint32_t len);

 private:
  friend class Fabric;

  struct PostedRecv {
    uint64_t wr_id;
    MemoryRegion* mr;
    size_t offset;
    uint32_t capacity;
  };

  // Tracks this QP's outstanding-op count and registers the QP as an active
  // poster on the NIC only on 0<->1 transitions: the per-node contention
  // term counts posting contexts, not pipelined ops (a deep async pipeline
  // on one QP is one context).
  void BeginOp();
  void EndOp();

  // RC send-queue ordering: every RC op takes a ticket at post time and its
  // completion waits for all earlier tickets, so completions are generated in
  // post order even when a faulted link's retransmissions reorder arrival
  // times (real RC hardware acks strictly in order). Fault-free the gate is
  // never taken: FIFO queueing already yields in-order completion, so the
  // event schedule is byte-identical to a build without the gate.
  sim::Task<void> AwaitTicket(uint64_t ticket);

  // Detached continuation carrying an unacknowledged UC WRITE to its target.
  sim::Task<void> DeliverUcWrite(RemoteKey rkey, size_t remote_off,
                                 std::vector<std::byte> payload);
  // Detached continuation delivering a SEND (UC or UD) to a destination QP.
  sim::Task<void> DeliverSend(QueuePair* dst, std::vector<std::byte> payload, bool reliable);
  // Consumes the head RECV buffer of `dst` and pushes the recv completion.
  void DeliverIntoRecv(QueuePair* dst, const std::vector<std::byte>& payload, uint32_t src_qpn);

  uint32_t PeerQpNum() const;

  Fabric* fabric_;
  QpType type_;
  QpState state_ = QpState::kReady;
  uint32_t qp_num_;
  Node* local_;
  Node* peer_;  // nullptr for UD
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  uint32_t peer_qp_num_ = 0;  // set by the fabric when connecting RC/UC pairs
  bool retired_ = false;      // set by Fabric::RetireQp
  int outstanding_ops_ = 0;
  uint64_t dropped_no_recv_ = 0;
  std::deque<PostedRecv> recv_queue_;
  // RC completion-order tickets (see AwaitTicket).
  uint64_t next_ticket_ = 0;
  uint64_t completed_ticket_ = 0;
  std::unique_ptr<sim::Notifier> order_waiters_;  // lazily built on first stall
};

}  // namespace rdma

#endif  // SRC_RDMA_QP_H_
