#include "src/rdma/nic.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.h"

namespace rdma {

namespace {

sim::Time FromNs(double ns) { return static_cast<sim::Time>(ns + 0.5); }

}  // namespace

Nic::Nic(sim::Engine& engine, const NicConfig& config, uint64_t seed, std::string node_name)
    : engine_(engine),
      config_(config),
      node_name_(std::move(node_name)),
      rng_(sim::Mix64(seed ^ 0x4e4943)),  // "NIC"
      issue_pipeline_(engine, 1),
      inbound_engine_(engine, 1),
      post_lock_(engine) {
  ValidateConfig(config_);
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    trace->NameTrack(reinterpret_cast<uint64_t>(this), node_name_ + " nic:outbound");
    trace->NameTrack(reinterpret_cast<uint64_t>(this) + 1, node_name_ + " nic:inbound");
  }
}

Nic::~Nic() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels{{"node", node_name_}};
  reg.GetCounter("rdma.nic.outbound_ops", labels)->Add(outbound_ops_);
  reg.GetCounter("rdma.nic.inbound_ops", labels)->Add(inbound_ops_);
  if (stalls_ > 0) {
    reg.GetCounter("rdma.nic.stalls", labels)->Add(stalls_);
  }
  reg.GetHistogram("rdma.nic.issue_wait_ns", labels)->Merge(issue_wait_ns_);
  reg.GetHistogram("rdma.nic.issue_queue_depth", labels)->Merge(issue_queue_depth_);
}

void Nic::TraceService(std::string_view name, bool inbound, sim::Time start) {
  if (sim::TraceSink* trace = engine_.trace_sink()) {
    const uint64_t track = reinterpret_cast<uint64_t>(this) + (inbound ? 1 : 0);
    trace->Span("nic", name, track, start, engine_.now());
  }
}

sim::Time Nic::Jitter(sim::Time nominal) {
  if (config_.service_jitter <= 0.0) {
    return nominal;
  }
  const double u = 2.0 * rng_.NextDouble() - 1.0;  // [-1, 1)
  return static_cast<sim::Time>(static_cast<double>(nominal) *
                                (1.0 + config_.service_jitter * u));
}

double Nic::OutboundMultiplier(Opcode op) const {
  const int extra = std::max(0, concurrent_outbound_ - config_.outbound_free_threads);
  const double factor = op == Opcode::kRead ? config_.outbound_read_thread_factor
                                            : config_.outbound_write_thread_factor;
  return 1.0 + factor * static_cast<double>(extra);
}

sim::Time Nic::OutboundServiceTime(Opcode op, uint32_t payload, bool batch_follower) const {
  // A batch follower rides the leader's doorbell: the pipeline only pays the
  // marginal WQE-prefetch cost for it. The contention multiplier still
  // applies (per-op requester state is held either way), as does the wire
  // serialization floor, so large batched WRITEs stay bandwidth-bound.
  double base = op == Opcode::kSend    ? config_.two_sided_tx_ns
                : batch_follower       ? config_.outbound_batch_marginal_ns
                                       : config_.outbound_issue_ns;
  base *= OutboundMultiplier(op);
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  return FromNs(std::max(base, serialization) * outbound_degrade_);
}

sim::Time Nic::InboundServiceTime(uint32_t payload) const {
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  return FromNs(std::max(config_.inbound_min_gap_ns, serialization) * inbound_degrade_);
}

sim::Task<void> Nic::PostOverhead() {
  co_await post_lock_.Lock();
  co_await engine_.Sleep(FromNs(config_.post_lock_ns));
  post_lock_.Unlock();
  co_await engine_.Sleep(FromNs(config_.post_cpu_ns));
}

sim::Task<void> Nic::CompletionOverhead() {
  co_await engine_.Sleep(FromNs(config_.completion_cpu_ns));
}

sim::Task<void> Nic::IssueOneSided(Opcode op, uint32_t outbound_payload, bool batch_follower) {
  ++outbound_ops_;
  // Service time (and any jitter draw) is fixed at post time, before
  // queueing, so observability never changes the simulated schedule.
  const sim::Time service = Jitter(OutboundServiceTime(op, outbound_payload, batch_follower));
  issue_queue_depth_.Record(issue_pipeline_.queue_length());
  const sim::Time posted = engine_.now();
  co_await issue_pipeline_.Acquire();
  const sim::Time granted = engine_.now();
  issue_wait_ns_.Record(granted - posted);
  co_await engine_.Sleep(service);
  issue_pipeline_.Release();
  TraceService(OpcodeName(op), false, granted);
}

sim::Task<void> Nic::IssueTwoSided(uint32_t payload) {
  ++outbound_ops_;
  const sim::Time service = Jitter(OutboundServiceTime(Opcode::kSend, payload));
  issue_queue_depth_.Record(issue_pipeline_.queue_length());
  const sim::Time posted = engine_.now();
  co_await issue_pipeline_.Acquire();
  const sim::Time granted = engine_.now();
  issue_wait_ns_.Record(granted - posted);
  co_await engine_.Sleep(service);
  issue_pipeline_.Release();
  TraceService("SEND", false, granted);
}

sim::Task<void> Nic::AbsorbReadResponse(uint32_t payload) {
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  co_await engine_.Sleep(FromNs(serialization + config_.read_state_cpu_ns));
}

sim::Task<void> Nic::ServeInboundOneSided(uint32_t payload) {
  ++inbound_ops_;
  const sim::Time service = Jitter(InboundServiceTime(payload));
  co_await inbound_engine_.Acquire();
  const sim::Time granted = engine_.now();
  co_await engine_.Sleep(service);
  inbound_engine_.Release();
  TraceService("serve", true, granted);
}

sim::Task<void> Nic::ServeInboundTwoSided(uint32_t payload) {
  ++inbound_ops_;
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  const sim::Time service =
      Jitter(FromNs(std::max(config_.two_sided_rx_ns, serialization) * inbound_degrade_));
  co_await inbound_engine_.Acquire();
  const sim::Time granted = engine_.now();
  co_await engine_.Sleep(service);
  inbound_engine_.Release();
  TraceService("recv", true, granted);
}

sim::Task<void> Nic::StallOutbound(sim::Time window) {
  ++stalls_;
  co_await issue_pipeline_.Acquire();
  const sim::Time start = engine_.now();
  co_await engine_.Sleep(window);
  issue_pipeline_.Release();
  TraceService("stall", false, start);
}

sim::Task<void> Nic::StallInbound(sim::Time window) {
  ++stalls_;
  co_await inbound_engine_.Acquire();
  const sim::Time start = engine_.now();
  co_await engine_.Sleep(window);
  inbound_engine_.Release();
  TraceService("stall", true, start);
}

namespace {

void Reject(const char* what) {
  throw std::invalid_argument(std::string("rdma config: ") + what);
}

void CheckNonNegative(double v, const char* what) {
  if (!(v >= 0.0)) Reject(what);  // negated compare also rejects NaN
}

void CheckProbability(double v, const char* what) {
  if (!(v >= 0.0 && v <= 1.0)) Reject(what);
}

}  // namespace

void ValidateConfig(const NicConfig& config) {
  CheckNonNegative(config.outbound_issue_ns, "outbound_issue_ns must be >= 0");
  CheckNonNegative(config.read_state_cpu_ns, "read_state_cpu_ns must be >= 0");
  CheckNonNegative(config.post_cpu_ns, "post_cpu_ns must be >= 0");
  CheckNonNegative(config.completion_cpu_ns, "completion_cpu_ns must be >= 0");
  CheckNonNegative(config.post_lock_ns, "post_lock_ns must be >= 0");
  if (config.outbound_free_threads < 0) Reject("outbound_free_threads must be >= 0");
  CheckNonNegative(config.outbound_read_thread_factor,
                   "outbound_read_thread_factor must be >= 0");
  CheckNonNegative(config.outbound_write_thread_factor,
                   "outbound_write_thread_factor must be >= 0");
  CheckNonNegative(config.outbound_batch_marginal_ns,
                   "outbound_batch_marginal_ns must be >= 0");
  CheckNonNegative(config.inbound_min_gap_ns, "inbound_min_gap_ns must be >= 0");
  if (!(config.bandwidth_bytes_per_ns > 0.0)) Reject("bandwidth_bytes_per_ns must be > 0");
  CheckNonNegative(config.two_sided_tx_ns, "two_sided_tx_ns must be >= 0");
  CheckNonNegative(config.two_sided_rx_ns, "two_sided_rx_ns must be >= 0");
  if (config.cores < 1) Reject("cores must be >= 1");
  if (config.nic_station_cores < 0 || config.nic_station_cores >= config.cores) {
    Reject("nic_station_cores must be in [0, cores)");
  }
  CheckProbability(config.service_jitter, "service_jitter must be in [0, 1]");
  if (!std::has_single_bit(config.mem_block_bytes) || config.mem_block_bytes < 64) {
    Reject("mem_block_bytes must be a power of two >= 64");
  }
  if (config.mem_pool_level < 1 || config.mem_pool_level > 32) {
    Reject("mem_pool_level must be in [1, 32]");
  }
  if (static_cast<size_t>(std::countl_zero(config.mem_block_bytes)) <
      static_cast<size_t>(config.mem_pool_level - 1)) {
    Reject("mem_block_bytes << (mem_pool_level - 1) overflows size_t");
  }
  if (config.mem_slab_classes < 0 ||
      (config.mem_slab_classes > 0 &&
       (config.mem_block_bytes >> config.mem_slab_classes) < 32)) {
    Reject("mem_slab_classes must keep the smallest slab class >= 32 bytes");
  }
  if (config.mem_slab_magazine < 0) Reject("mem_slab_magazine must be >= 0");
  if (config.mem_max_registered_bytes != 0 &&
      config.mem_max_registered_bytes < (config.mem_block_bytes << (config.mem_pool_level - 1))) {
    Reject("mem_max_registered_bytes below one arena (mem_block_bytes << (mem_pool_level - 1))");
  }
}

void ValidateConfig(const FabricConfig& config) {
  ValidateConfig(config.nic);
  if (config.wire_latency_ns < 0) Reject("wire_latency_ns must be >= 0");
  CheckProbability(config.unreliable_loss_prob, "unreliable_loss_prob must be in [0, 1]");
}

const char* WcStatusName(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess:
      return "SUCCESS";
    case WcStatus::kUnsupportedOp:
      return "UNSUPPORTED_OP";
    case WcStatus::kRemoteAccessError:
      return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRnrRetryExceeded:
      return "RNR_RETRY_EXCEEDED";
    case WcStatus::kLocalProtError:
      return "LOCAL_PROT_ERROR";
    case WcStatus::kQpError:
      return "QP_ERROR";
  }
  return "UNKNOWN";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kRead:
      return "READ";
    case Opcode::kWrite:
      return "WRITE";
    case Opcode::kSend:
      return "SEND";
    case Opcode::kRecv:
      return "RECV";
  }
  return "UNKNOWN";
}

const char* QpTypeName(QpType type) {
  switch (type) {
    case QpType::kRc:
      return "RC";
    case QpType::kUc:
      return "UC";
    case QpType::kUd:
      return "UD";
  }
  return "UNKNOWN";
}

}  // namespace rdma
