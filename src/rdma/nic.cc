#include "src/rdma/nic.h"

#include <algorithm>

namespace rdma {

namespace {

sim::Time FromNs(double ns) { return static_cast<sim::Time>(ns + 0.5); }

}  // namespace

Nic::Nic(sim::Engine& engine, const NicConfig& config, uint64_t seed)
    : engine_(engine),
      config_(config),
      rng_(sim::Mix64(seed ^ 0x4e4943)),  // "NIC"
      issue_pipeline_(engine, 1),
      inbound_engine_(engine, 1),
      post_lock_(engine) {}

sim::Time Nic::Jitter(sim::Time nominal) {
  if (config_.service_jitter <= 0.0) {
    return nominal;
  }
  const double u = 2.0 * rng_.NextDouble() - 1.0;  // [-1, 1)
  return static_cast<sim::Time>(static_cast<double>(nominal) *
                                (1.0 + config_.service_jitter * u));
}

double Nic::OutboundMultiplier(Opcode op) const {
  const int extra = std::max(0, concurrent_outbound_ - config_.outbound_free_threads);
  const double factor = op == Opcode::kRead ? config_.outbound_read_thread_factor
                                            : config_.outbound_write_thread_factor;
  return 1.0 + factor * static_cast<double>(extra);
}

sim::Time Nic::OutboundServiceTime(Opcode op, uint32_t payload) const {
  double base = op == Opcode::kSend ? config_.two_sided_tx_ns : config_.outbound_issue_ns;
  base *= OutboundMultiplier(op);
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  return FromNs(std::max(base, serialization));
}

sim::Time Nic::InboundServiceTime(uint32_t payload) const {
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  return FromNs(std::max(config_.inbound_min_gap_ns, serialization));
}

sim::Task<void> Nic::PostOverhead() {
  co_await post_lock_.Lock();
  co_await engine_.Sleep(FromNs(config_.post_lock_ns));
  post_lock_.Unlock();
  co_await engine_.Sleep(FromNs(config_.post_cpu_ns));
}

sim::Task<void> Nic::CompletionOverhead() {
  co_await engine_.Sleep(FromNs(config_.completion_cpu_ns));
}

sim::Task<void> Nic::IssueOneSided(Opcode op, uint32_t outbound_payload) {
  ++outbound_ops_;
  co_await issue_pipeline_.Use(Jitter(OutboundServiceTime(op, outbound_payload)));
}

sim::Task<void> Nic::IssueTwoSided(uint32_t payload) {
  ++outbound_ops_;
  co_await issue_pipeline_.Use(Jitter(OutboundServiceTime(Opcode::kSend, payload)));
}

sim::Task<void> Nic::AbsorbReadResponse(uint32_t payload) {
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  co_await engine_.Sleep(FromNs(serialization + config_.read_state_cpu_ns));
}

sim::Task<void> Nic::ServeInboundOneSided(uint32_t payload) {
  ++inbound_ops_;
  co_await inbound_engine_.Use(Jitter(InboundServiceTime(payload)));
}

sim::Task<void> Nic::ServeInboundTwoSided(uint32_t payload) {
  ++inbound_ops_;
  const double serialization = static_cast<double>(payload) / config_.bandwidth_bytes_per_ns;
  co_await inbound_engine_.Use(Jitter(FromNs(std::max(config_.two_sided_rx_ns, serialization))));
}

const char* WcStatusName(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess:
      return "SUCCESS";
    case WcStatus::kUnsupportedOp:
      return "UNSUPPORTED_OP";
    case WcStatus::kRemoteAccessError:
      return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRnrRetryExceeded:
      return "RNR_RETRY_EXCEEDED";
    case WcStatus::kLocalProtError:
      return "LOCAL_PROT_ERROR";
  }
  return "UNKNOWN";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kRead:
      return "READ";
    case Opcode::kWrite:
      return "WRITE";
    case Opcode::kSend:
      return "SEND";
    case Opcode::kRecv:
      return "RECV";
  }
  return "UNKNOWN";
}

const char* QpTypeName(QpType type) {
  switch (type) {
    case QpType::kRc:
      return "RC";
    case QpType::kUc:
      return "UC";
    case QpType::kUd:
      return "UD";
  }
  return "UNKNOWN";
}

}  // namespace rdma
