// Registered memory regions.
//
// A MemoryRegion owns real bytes. One-sided operations copy actual data
// between regions, so everything layered above (headers, checksums, hash
// buckets) behaves exactly as it would on real hardware — including torn
// reads when a responder mutates a region between simulated instants.

#ifndef SRC_RDMA_MEMORY_H_
#define SRC_RDMA_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/rdma/types.h"

namespace rdma {

class Node;

class MemoryRegion {
 public:
  MemoryRegion(Node* node, uint32_t lkey, uint32_t rkey, size_t size, uint32_t access)
      : node_(node), lkey_(lkey), rkey_(rkey), access_(access), data_(size) {}

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  Node* node() const { return node_; }
  uint32_t lkey() const { return lkey_; }
  RemoteKey remote_key() const { return RemoteKey{rkey_}; }
  size_t size() const { return data_.size(); }
  uint32_t access() const { return access_; }

  bool AllowsRemoteRead() const { return (access_ & kAccessRemoteRead) != 0; }
  bool AllowsRemoteWrite() const { return (access_ & kAccessRemoteWrite) != 0; }

  std::span<std::byte> bytes() { return data_; }
  std::span<const std::byte> bytes() const { return data_; }

  bool InBounds(size_t offset, size_t len) const {
    return offset <= data_.size() && len <= data_.size() - offset;
  }

  // Local typed accessors (bounds are the caller's responsibility after an
  // InBounds check; they assert in debug builds via span).
  template <typename T>
  T Load(size_t offset) const {
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    return value;
  }

  template <typename T>
  void Store(size_t offset, const T& value) {
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }

  // Empty spans are valid (zero-length messages) but may carry a null data
  // pointer, which memcpy must never see.
  void WriteBytes(size_t offset, std::span<const std::byte> src) {
    if (src.empty()) return;
    std::memcpy(data_.data() + offset, src.data(), src.size());
  }

  void ReadBytes(size_t offset, std::span<std::byte> dst) const {
    if (dst.empty()) return;
    std::memcpy(dst.data(), data_.data() + offset, dst.size());
  }

 private:
  Node* node_;
  uint32_t lkey_;
  uint32_t rkey_;
  uint32_t access_;
  std::vector<std::byte> data_;
};

}  // namespace rdma

#endif  // SRC_RDMA_MEMORY_H_
