// Registered memory regions.
//
// A MemoryRegion owns real bytes. One-sided operations copy actual data
// between regions, so everything layered above (headers, checksums, hash
// buckets) behaves exactly as it would on real hardware — including torn
// reads when a responder mutates a region between simulated instants.

#ifndef SRC_RDMA_MEMORY_H_
#define SRC_RDMA_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/rdma/types.h"

namespace rdma {

class Node;

// The one checked byte-copy every registered-memory path funnels through
// (region accessors, rfp staging, kv entry moves). Two guarantees memcpy
// alone does not give:
//  * zero-length spans are valid no-ops even when they carry a null data
//    pointer (empty messages / empty values);
//  * overlapping src/dst throws instead of silently invoking UB — staging
//    buffers and registered entries never legitimately alias, so an overlap
//    is always a caller bug worth failing loudly on.
// The spans must be the same length; length mismatch is likewise a bug.
inline void CopyBytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  if (dst.size() != src.size()) {
    throw std::invalid_argument("rdma::CopyBytes: src/dst length mismatch");
  }
  if (src.empty()) return;
  const std::byte* s = src.data();
  const std::byte* d = dst.data();
  // std::less gives the total pointer order the raw < lacks across objects.
  const bool disjoint = std::less_equal<const std::byte*>{}(s + src.size(), d) ||
                        std::less_equal<const std::byte*>{}(d + dst.size(), s);
  if (!disjoint) {
    throw std::invalid_argument("rdma::CopyBytes: overlapping spans");
  }
  std::memcpy(dst.data(), s, src.size());
}

class MemoryRegion {
 public:
  MemoryRegion(Node* node, uint32_t lkey, uint32_t rkey, size_t size, uint32_t access)
      : node_(node), lkey_(lkey), rkey_(rkey), access_(access), data_(size) {}

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  Node* node() const { return node_; }
  uint32_t lkey() const { return lkey_; }
  RemoteKey remote_key() const { return RemoteKey{rkey_}; }
  size_t size() const { return data_.size(); }
  uint32_t access() const { return access_; }

  bool AllowsRemoteRead() const { return (access_ & kAccessRemoteRead) != 0; }
  bool AllowsRemoteWrite() const { return (access_ & kAccessRemoteWrite) != 0; }

  std::span<std::byte> bytes() { return data_; }
  std::span<const std::byte> bytes() const { return data_; }

  bool InBounds(size_t offset, size_t len) const {
    return offset <= data_.size() && len <= data_.size() - offset;
  }

  // Local typed accessors (bounds are the caller's responsibility after an
  // InBounds check; they assert in debug builds via span).
  template <typename T>
  T Load(size_t offset) const {
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    return value;
  }

  template <typename T>
  void Store(size_t offset, const T& value) {
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }

  void WriteBytes(size_t offset, std::span<const std::byte> src) {
    CopyBytes(std::span<std::byte>(data_).subspan(offset, src.size()), src);
  }

  void ReadBytes(size_t offset, std::span<std::byte> dst) const {
    CopyBytes(dst, std::span<const std::byte>(data_).subspan(offset, dst.size()));
  }

 private:
  Node* node_;
  uint32_t lkey_;
  uint32_t rkey_;
  uint32_t access_;
  std::vector<std::byte> data_;
};

}  // namespace rdma

#endif  // SRC_RDMA_MEMORY_H_
