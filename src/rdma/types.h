// Core vocabulary types for the simulated RDMA fabric.
//
// Names deliberately mirror the InfiniBand verbs API (queue pairs, work
// requests, work completions, rkeys) so that code written against this
// substrate reads like code written against libibverbs.

#ifndef SRC_RDMA_TYPES_H_
#define SRC_RDMA_TYPES_H_

#include <cstdint>

namespace rdma {

// Transport service types. Only RC supports both one-sided READ and WRITE;
// UC drops READ; UD supports two-sided SEND/RECV only (paper Section 5).
enum class QpType : uint8_t {
  kRc,  // Reliable Connection
  kUc,  // Unreliable Connection
  kUd,  // Unreliable Datagram
};

enum class Opcode : uint8_t {
  kRead,   // one-sided RDMA READ
  kWrite,  // one-sided RDMA WRITE
  kSend,   // two-sided SEND (consumes a posted RECV at the responder)
  kRecv,   // receive completion (responder side)
};

enum class WcStatus : uint8_t {
  kSuccess,
  kUnsupportedOp,      // opcode not valid for this QP type
  kRemoteAccessError,  // bad rkey, out-of-bounds, or missing access rights
  kRnrRetryExceeded,   // RC SEND with no posted RECV at the responder
  kLocalProtError,     // local buffer out of bounds
  kQpError,            // QP transitioned to the error state; needs reconnect
};

const char* WcStatusName(WcStatus status);
const char* OpcodeName(Opcode op);
const char* QpTypeName(QpType type);

// Completion record, delivered on the requester (send) or responder (recv)
// completion queue.
struct WorkCompletion {
  uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  Opcode opcode = Opcode::kRead;
  uint32_t byte_len = 0;
  uint32_t qp_num = 0;
  // Immediate-style tag carried by SEND (used to identify the sender).
  uint32_t src_qp_num = 0;
  // Logical snapshot tick of a READ's remote DMA, stamped by the invariant
  // checker when one is attached (see src/check/). Zero otherwise. Readers
  // thread it through to FabricChecker::OnAccept so the race detector can
  // evaluate happens-before as of the fetch, not as of the accept.
  uint64_t check_tick = 0;

  bool ok() const { return status == WcStatus::kSuccess; }
};

// Memory access permissions, combinable as a bitmask.
enum AccessFlags : uint32_t {
  kAccessLocal = 0,
  kAccessRemoteRead = 1u << 0,
  kAccessRemoteWrite = 1u << 1,
};

// Opaque handle a peer uses to address a registered memory region.
struct RemoteKey {
  uint32_t rkey = 0;
};

// Datagram destination for UD SENDs (the verbs "address handle").
struct AddressHandle {
  uint32_t node_id = 0;
  uint32_t qp_num = 0;
};

}  // namespace rdma

#endif  // SRC_RDMA_TYPES_H_
