// Completion queues.
//
// Completions are appended by the fabric when operations finish and drained
// by application actors, either non-blockingly (Poll) or by suspending until
// one arrives (Wait) — the coroutine analogue of busy-polling ibv_poll_cq.

#ifndef SRC_RDMA_CQ_H_
#define SRC_RDMA_CQ_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>

#include "src/check/checker.h"
#include "src/rdma/types.h"
#include "src/sim/engine.h"
#include "src/sim/signal.h"
#include "src/sim/task.h"

namespace rdma {

class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine) : engine_(engine), arrival_(engine) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  // Attached by the fabric when invariant checking is on (see src/check/).
  void set_checker(check::FabricChecker* checker) { checker_ = checker; }

  // Internal: appends a completion and wakes one waiter.
  void Push(const WorkCompletion& wc) {
    queue_.push_back(wc);
    ++total_;
    if (checker_ != nullptr) {
      checker_->OnCqPush(this, wc, queue_.size());
    }
    arrival_.NotifyOne();
  }

  // Non-blocking poll; std::nullopt when the queue is empty.
  std::optional<WorkCompletion> Poll() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    WorkCompletion wc = queue_.front();
    queue_.pop_front();
    return wc;
  }

  // Drains up to out.size() completions; returns how many were written.
  size_t PollBatch(std::span<WorkCompletion> out) {
    size_t n = 0;
    while (n < out.size() && !queue_.empty()) {
      out[n++] = queue_.front();
      queue_.pop_front();
    }
    return n;
  }

  // Suspends until a completion is available, then returns it.
  sim::Task<WorkCompletion> Wait() {
    while (true) {
      if (auto wc = Poll()) {
        co_return *wc;
      }
      co_await arrival_.Wait();
    }
  }

  size_t depth() const { return queue_.size(); }
  uint64_t total_completions() const { return total_; }

 private:
  sim::Engine& engine_;
  sim::Notifier arrival_;
  check::FabricChecker* checker_ = nullptr;
  std::deque<WorkCompletion> queue_;
  uint64_t total_ = 0;
};

}  // namespace rdma

#endif  // SRC_RDMA_CQ_H_
